// Package perceptron implements the hashed perceptron predictor of Tarjan
// and Skadron ("Merging path and gshare indexing in perceptron branch
// prediction"). A set of weight tables, each indexed by a hash of the
// branch address with a geometrically growing slice of global and path
// history, contributes signed weights whose sum decides the prediction.
// Training is perceptron-style: only on a misprediction or when the sum's
// magnitude falls below an adaptively trained threshold.
package perceptron

import (
	"fmt"
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Predictor is a hashed perceptron branch predictor.
type Predictor struct {
	tables  [][]utils.SignedCounter
	folded  []*utils.FoldedHistory
	lengths []int
	logSize int
	wBits   int

	ghist *utils.GlobalHistory
	phist *utils.PathHistory

	theta int
	tc    utils.SignedCounter // adaptive threshold trainer

	// Cached sum for the last predicted IP, reused by Train.
	lastIP  uint64
	lastSum int
	haveSum bool

	// kidx is the batch kernel's per-table index scratch (see kernel.go):
	// the indices computed for the weight sum are reused by the update
	// instead of being re-hashed. Not part of the serialized state.
	kidx []uint32

	trainings uint64 // statistic: below-threshold updates
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	lengths []int
	logSize int
	wBits   int
	theta   int
}

// WithHistoryLengths sets the per-table history lengths; the first entry is
// conventionally 0 (bias table). Default {0, 3, 6, 12, 24, 48, 96, 128}.
func WithHistoryLengths(l []int) Option { return func(c *config) { c.lengths = l } }

// WithLogSize sets the log2 entries per table. Default 13.
func WithLogSize(n int) Option { return func(c *config) { c.logSize = n } }

// WithWeightBits sets the weight counter width. Default 8.
func WithWeightBits(n int) Option { return func(c *config) { c.wBits = n } }

// New returns a hashed perceptron predictor.
func New(opts ...Option) *Predictor {
	cfg := config{
		lengths: []int{0, 3, 6, 12, 24, 48, 96, 128},
		logSize: 13,
		wBits:   8,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.lengths) < 2 {
		panic("perceptron: need at least two tables")
	}
	if cfg.logSize < 1 || cfg.logSize > 26 {
		panic(fmt.Sprintf("perceptron: invalid log table size %d", cfg.logSize))
	}
	maxLen := 0
	for i, l := range cfg.lengths {
		if l < 0 || (i > 0 && l < cfg.lengths[i-1]) {
			panic(fmt.Sprintf("perceptron: history lengths must be non-negative and ascending: %v", cfg.lengths))
		}
		if l > maxLen {
			maxLen = l
		}
	}
	if cfg.theta == 0 {
		// The classical perceptron threshold heuristic, scaled to the
		// number of tables.
		cfg.theta = int(2.14*float64(len(cfg.lengths))) + 10
	}
	p := &Predictor{
		lengths: cfg.lengths,
		logSize: cfg.logSize,
		wBits:   cfg.wBits,
		ghist:   utils.NewGlobalHistory(maxLen + 1),
		phist:   utils.NewPathHistory(8, 8),
		theta:   cfg.theta,
		tc:      utils.NewSignedCounter(7, 0),
	}
	for _, l := range cfg.lengths {
		t := make([]utils.SignedCounter, 1<<cfg.logSize)
		for i := range t {
			t[i] = utils.NewSignedCounter(cfg.wBits, 0)
		}
		p.tables = append(p.tables, t)
		width := cfg.logSize
		p.folded = append(p.folded, utils.NewFoldedHistory(l, width))
	}
	p.kidx = make([]uint32, len(p.tables))
	return p
}

func (p *Predictor) index(ip uint64, t int) uint64 {
	h := p.folded[t].Value()
	// Mix in a slice of path history for the longer tables, per the
	// paper's merged path/gshare indexing.
	path := uint64(0)
	if p.lengths[t] >= 8 {
		path = p.phist.Packed()
	}
	return utils.XorFold(ip^h^(path<<1)^uint64(t)*0x9e3779b97f4a7c15, p.logSize)
}

// sum computes the weight sum for ip.
func (p *Predictor) sum(ip uint64) int {
	s := 0
	for t := range p.tables {
		s += p.tables[t][p.index(ip, t)].Get()
	}
	return s
}

// Predict implements bp.Predictor.
//
//mbpvet:impure caches the perceptron sum for Train's threshold comparison; the sum is recomputed if Train sees another ip, so predictions are unaffected
func (p *Predictor) Predict(ip uint64) bool {
	s := p.sum(ip)
	p.lastIP, p.lastSum, p.haveSum = ip, s, true
	return s >= 0
}

// Train implements bp.Predictor: perceptron update with adaptive threshold.
func (p *Predictor) Train(b bp.Branch) {
	s := p.lastSum
	if !p.haveSum || p.lastIP != b.IP {
		s = p.sum(b.IP)
	}
	pred := s >= 0
	mag := s
	if mag < 0 {
		mag = -mag
	}
	mispredicted := pred != b.Taken
	if mispredicted || mag <= p.theta {
		p.trainings++
		for t := range p.tables {
			p.tables[t][p.index(b.IP, t)].SumOrSub(b.Taken)
		}
	}
	// Adaptive threshold (O-GEHL style): mispredictions push theta up,
	// low-confidence correct predictions pull it down.
	if mispredicted {
		p.tc.Add(1)
		if p.tc.Get() == p.tc.Max() {
			p.theta++
			p.tc.Set(0)
		}
	} else if mag <= p.theta {
		p.tc.Add(-1)
		if p.tc.Get() == p.tc.Min() {
			if p.theta > 1 {
				p.theta--
			}
			p.tc.Set(0)
		}
	}
}

// Track implements bp.Predictor: update global and path histories.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist.Push(b.Taken)
	p.phist.Push(b.IP >> 2)
	for t := range p.folded {
		if p.lengths[t] == 0 {
			continue
		}
		oldest := p.ghist.Bit(p.lengths[t]) // bit that just left the window
		p.folded[t].Update(b.Taken, oldest)
	}
	p.haveSum = false
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":            "MBPlib Hashed Perceptron",
		"history_lengths": append([]int(nil), p.lengths...),
		"log_table_size":  p.logSize,
		"weight_bits":     p.wBits,
	}
}

// Statistics implements bp.StatsProvider.
func (p *Predictor) Statistics() map[string]any {
	return map[string]any{
		"threshold":        p.theta,
		"weight_trainings": p.trainings,
	}
}

// ckptVersion is the checkpoint format version of this predictor.
const ckptVersion = 1

// Checkpoint implements bp.Checkpointer. The prediction cache and the
// statistics counters are part of the state: a restored instance reproduces
// not only predictions but the exact Statistics() output.
func (p *Predictor) Checkpoint(w io.Writer) error {
	cw := bp.NewCkptWriter(w)
	cw.Header("perceptron", ckptVersion)
	cw.Int(len(p.lengths))
	for _, l := range p.lengths {
		cw.Int(l)
	}
	cw.Int(p.logSize)
	cw.Int(p.wBits)
	for t := range p.tables {
		for i := range p.tables[t] {
			cw.I64(int64(p.tables[t][i].Get()))
		}
	}
	for t := range p.folded {
		cw.U64(p.folded[t].Value())
	}
	cw.U64s(p.ghist.Words())
	buf, head, packed := p.phist.State()
	cw.Int(head)
	cw.U64(packed)
	cw.Int(len(buf))
	for _, v := range buf {
		cw.U64(uint64(v))
	}
	cw.Int(p.theta)
	cw.I64(int64(p.tc.Get()))
	cw.U64(p.lastIP)
	cw.I64(int64(p.lastSum))
	cw.Bool(p.haveSum)
	cw.U64(p.trainings)
	return cw.Err()
}

// Restore implements bp.Checkpointer.
func (p *Predictor) Restore(r io.Reader) error {
	cr := bp.NewCkptReader(r)
	if v := cr.Header("perceptron"); cr.Err() == nil && v != ckptVersion {
		cr.Corrupt("unknown perceptron checkpoint version %d", v)
	}
	cr.ExpectInt("table count", len(p.lengths))
	for i, l := range p.lengths {
		cr.ExpectInt(fmt.Sprintf("history length %d", i), l)
	}
	cr.ExpectInt("log_table_size", p.logSize)
	cr.ExpectInt("weight_bits", p.wBits)
	if err := cr.Err(); err != nil {
		return err
	}
	for t := range p.tables {
		for i := range p.tables[t] {
			p.tables[t][i].Set(int(cr.I64()))
		}
	}
	for t := range p.folded {
		p.folded[t].SetValue(cr.U64())
	}
	words := cr.U64s()
	head := cr.Int()
	packed := cr.U64()
	n := cr.Int()
	if n != 8 { // NewPathHistory(8, 8) above
		cr.Corrupt("path history holds %d entries, restoring instance has 8", n)
	}
	buf := make([]uint16, 8)
	for i := range buf {
		buf[i] = uint16(cr.U64())
	}
	theta := cr.Int()
	tc := int(cr.I64())
	lastIP := cr.U64()
	lastSum := int(cr.I64())
	haveSum := cr.Bool()
	trainings := cr.U64()
	if wantWords := (p.ghist.Len() + 63) / 64; len(words) != wantWords {
		cr.Corrupt("global history of %d words, restoring instance has %d", len(words), wantWords)
	}
	if head < 0 || head >= 8 {
		cr.Corrupt("path history head %d out of range", head)
	}
	if err := cr.Err(); err != nil {
		return err
	}
	p.ghist.SetWords(words)
	p.phist.SetState(buf, head, packed)
	p.theta = theta
	p.tc.Set(tc)
	p.lastIP, p.lastSum, p.haveSum = lastIP, lastSum, haveSum
	p.trainings = trainings
	return nil
}
