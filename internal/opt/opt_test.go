package opt

import (
	"math"
	"testing"
)

// bowl is a convex objective with minimum at (7, -3).
func bowl(pt Point) float64 {
	dx := float64(pt["x"] - 7)
	dy := float64(pt["y"] + 3)
	return dx*dx + dy*dy
}

var bowlParams = []Param{{Name: "x", Min: 0, Max: 20}, {Name: "y", Min: -10, Max: 10}}

func TestHillClimbFindsMinimum(t *testing.T) {
	res, err := HillClimb(bowlParams, Point{"x": 0, "y": 10}, bowl, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["x"] != 7 || res.Best["y"] != -3 {
		t.Errorf("best = %v, want x=7 y=-3", res.Best)
	}
	if res.BestScore != 0 {
		t.Errorf("best score = %v", res.BestScore)
	}
	if res.Evaluations == 0 || res.Evaluations > 500 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
}

func TestHillClimbDefaultsStartToMidpoint(t *testing.T) {
	res, err := HillClimb(bowlParams, Point{}, bowl, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["x"] != 7 || res.Best["y"] != -3 {
		t.Errorf("best = %v", res.Best)
	}
}

func TestHillClimbClampsStart(t *testing.T) {
	res, err := HillClimb(bowlParams, Point{"x": 999, "y": -999}, bowl, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["x"] < 0 || res.Best["x"] > 20 {
		t.Errorf("x out of range: %v", res.Best)
	}
}

func TestHillClimbRespectsBudget(t *testing.T) {
	res, err := HillClimb(bowlParams, Point{"x": 0, "y": 10}, bowl, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 5 {
		t.Errorf("evaluations = %d, budget 5", res.Evaluations)
	}
}

func TestHillClimbCachesRepeatedPoints(t *testing.T) {
	calls := 0
	counting := func(pt Point) float64 { calls++; return bowl(pt) }
	res, err := HillClimb(bowlParams, Point{"x": 6, "y": -3}, counting, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Evaluations {
		t.Errorf("objective called %d times, reported %d", calls, res.Evaluations)
	}
}

func TestGeneticFindsGoodPoint(t *testing.T) {
	res, err := Genetic(bowlParams, bowl, GeneticConfig{Population: 16, Generations: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore > 2 {
		t.Errorf("genetic best score = %v, want near 0 (best %v)", res.BestScore, res.Best)
	}
}

func TestGeneticDeterministic(t *testing.T) {
	a, err := Genetic(bowlParams, bowl, GeneticConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(bowlParams, bowl, GeneticConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestScore != b.BestScore || a.Evaluations != b.Evaluations {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestGeneticHandlesRuggedObjective(t *testing.T) {
	rugged := func(pt Point) float64 {
		x := float64(pt["x"])
		return math.Abs(x-13) + 3*math.Mod(x, 2)
	}
	res, err := Genetic([]Param{{Name: "x", Min: 0, Max: 30}}, rugged, GeneticConfig{Population: 20, Generations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore > 2 {
		t.Errorf("rugged best = %v score %v", res.Best, res.BestScore)
	}
}

func TestValidation(t *testing.T) {
	bad := [][]Param{
		nil,
		{{Name: "", Min: 0, Max: 1}},
		{{Name: "x", Min: 5, Max: 1}},
		{{Name: "x", Min: 0, Max: 1}, {Name: "x", Min: 0, Max: 1}},
	}
	for i, params := range bad {
		if _, err := HillClimb(params, Point{}, bowl, 10); err == nil {
			t.Errorf("case %d: HillClimb accepted invalid params", i)
		}
		if _, err := Genetic(params, bowl, GeneticConfig{}); err == nil {
			t.Errorf("case %d: Genetic accepted invalid params", i)
		}
	}
}
