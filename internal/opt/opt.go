// Package opt searches predictor parameter spaces, the use case of §VI-B of
// the MBPlib paper: when a predictor has dozens of parameters, exhaustive
// sweeps become infeasible, and the fact that MBPlib is a library means an
// optimizer can call the simulator inside its objective function. The
// package provides integer-box hill climbing and a small genetic algorithm;
// both are deterministic given their seed.
package opt

import (
	"fmt"
	"sort"

	"mbplib/internal/utils"
)

// Param is one integer parameter with an inclusive range.
type Param struct {
	Name     string
	Min, Max int
}

// Point is an assignment of values to parameters.
type Point map[string]int

// clone copies a point.
func (p Point) clone() Point {
	q := make(Point, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Objective evaluates a point; lower is better (e.g. MPKI).
type Objective func(Point) float64

// Result reports the outcome of a search.
type Result struct {
	Best        Point
	BestScore   float64
	Evaluations int
}

func validate(params []Param) error {
	if len(params) == 0 {
		return fmt.Errorf("opt: no parameters")
	}
	seen := map[string]bool{}
	for _, p := range params {
		if p.Name == "" || p.Min > p.Max {
			return fmt.Errorf("opt: invalid parameter %+v", p)
		}
		if seen[p.Name] {
			return fmt.Errorf("opt: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// HillClimb performs steepest-descent hill climbing from start: each round
// evaluates every ±1 neighbour of the incumbent and moves to the best
// strictly improving one, stopping at a local optimum or after maxEvals
// objective evaluations. Results are cached so re-visited points are free.
func HillClimb(params []Param, start Point, obj Objective, maxEvals int) (*Result, error) {
	if err := validate(params); err != nil {
		return nil, err
	}
	if maxEvals <= 0 {
		maxEvals = 100
	}
	cur := start.clone()
	for _, p := range params {
		v, ok := cur[p.Name]
		if !ok {
			v = (p.Min + p.Max) / 2
		}
		if v < p.Min {
			v = p.Min
		}
		if v > p.Max {
			v = p.Max
		}
		cur[p.Name] = v
	}

	cache := map[string]float64{}
	evals := 0
	eval := func(pt Point) float64 {
		key := pointKey(params, pt)
		if s, ok := cache[key]; ok {
			return s
		}
		evals++
		s := obj(pt)
		cache[key] = s
		return s
	}

	best := cur.clone()
	bestScore := eval(best)
	for evals < maxEvals {
		improved := false
		cand := best.clone()
		candScore := bestScore
		for _, p := range params {
			for _, delta := range []int{-1, 1} {
				v := best[p.Name] + delta
				if v < p.Min || v > p.Max {
					continue
				}
				n := best.clone()
				n[p.Name] = v
				s := eval(n)
				if s < candScore {
					cand, candScore = n, s
					improved = true
				}
				if evals >= maxEvals {
					break
				}
			}
		}
		if !improved {
			break
		}
		best, bestScore = cand, candScore
	}
	return &Result{Best: best, BestScore: bestScore, Evaluations: evals}, nil
}

// GeneticConfig parameterises Genetic.
type GeneticConfig struct {
	Population  int // default 12
	Generations int // default 10
	Seed        uint64
	// MutationNum/MutationDen is the per-gene mutation probability.
	// Default 1/4.
	MutationNum, MutationDen int
}

// Genetic runs a small generational genetic algorithm: tournament
// selection, uniform crossover, ±step mutation.
func Genetic(params []Param, obj Objective, cfg GeneticConfig) (*Result, error) {
	if err := validate(params); err != nil {
		return nil, err
	}
	if cfg.Population <= 1 {
		cfg.Population = 12
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 10
	}
	if cfg.MutationDen <= 0 {
		cfg.MutationNum, cfg.MutationDen = 1, 4
	}
	rng := utils.NewRand(cfg.Seed + 1)

	type indiv struct {
		pt    Point
		score float64
	}
	randomPoint := func() Point {
		pt := make(Point, len(params))
		for _, p := range params {
			pt[p.Name] = p.Min + rng.Intn(p.Max-p.Min+1)
		}
		return pt
	}

	evals := 0
	cache := map[string]float64{}
	eval := func(pt Point) float64 {
		key := pointKey(params, pt)
		if s, ok := cache[key]; ok {
			return s
		}
		evals++
		s := obj(pt)
		cache[key] = s
		return s
	}

	pop := make([]indiv, cfg.Population)
	for i := range pop {
		pt := randomPoint()
		pop[i] = indiv{pt, eval(pt)}
	}
	best := pop[0]
	for _, in := range pop {
		if in.score < best.score {
			best = in
		}
	}

	pick := func() indiv { // 2-way tournament
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if a.score <= b.score {
			return a
		}
		return b
	}
	for g := 0; g < cfg.Generations; g++ {
		next := make([]indiv, 0, cfg.Population)
		next = append(next, best) // elitism
		for len(next) < cfg.Population {
			ma, pa := pick(), pick()
			child := make(Point, len(params))
			for _, p := range params {
				v := ma.pt[p.Name]
				if rng.Bool(1, 2) {
					v = pa.pt[p.Name]
				}
				if rng.Bool(cfg.MutationNum, cfg.MutationDen) {
					v += rng.Intn(3) - 1
				}
				if v < p.Min {
					v = p.Min
				}
				if v > p.Max {
					v = p.Max
				}
				child[p.Name] = v
			}
			next = append(next, indiv{child, eval(child)})
		}
		pop = next
		for _, in := range pop {
			if in.score < best.score {
				best = in
			}
		}
	}
	return &Result{Best: best.pt, BestScore: best.score, Evaluations: evals}, nil
}

// pointKey renders a point canonically for caching.
func pointKey(params []Param, pt Point) string {
	names := make([]string, 0, len(params))
	for _, p := range params {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	key := ""
	for _, n := range names {
		key += fmt.Sprintf("%s=%d;", n, pt[n])
	}
	return key
}
