// Package sweep is the shared parameter-sweep pipeline behind mbpsweep and
// the mbpd daemon: one spec shape, one resolution step (glob expansion,
// predictor validation, trace digests), one execution path over the sim
// scheduler, and one renderer. Because the CLI and the daemon call the very
// same functions, a sweep submitted remotely produces byte-identical result
// JSON to the same sweep run locally — the equivalence the daemon-smoke CI
// gate diffs at the binary level.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/chunked"
	"mbplib/internal/compress"
	"mbplib/internal/obs"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/sim/journal"
)

// Exit codes shared by the sweep CLIs and mapped onto HTTP statuses by
// internal/api: 0 success, 1 usage error, 2 partial failure (some traces
// failed but every value still scored), 3 total failure, 4 drained (the run
// was interrupted; resumable).
const (
	ExitOK      = 0
	ExitUsage   = 1
	ExitPartial = 2
	ExitTotal   = 3
	ExitDrained = 4
)

// Spec is one parameter sweep, in the wire shape the daemon persists and
// internal/api serialises: the flags of mbpsweep as data. The zero values of
// Step and Policy normalise to 1 and "failfast".
type Spec struct {
	// Traces is a glob of SBBT trace files on the executing host.
	Traces string `json:"traces"`
	// Predictor is a registry spec with a %d placeholder for the swept value.
	Predictor string `json:"predictor"`
	// From, To and Step define the swept values {From, From+Step, ..., <= To}.
	From int `json:"from"`
	To   int `json:"to"`
	Step int `json:"step,omitempty"`
	// Policy is the per-trace failure policy: "failfast" or "skip".
	Policy string `json:"policy,omitempty"`
	// Retries is the transient trace-open retry budget.
	Retries int `json:"retries,omitempty"`
}

// Normalized returns the spec with defaults filled in: Step 1, Policy
// "failfast". Normalisation happens before validation and before the job
// key is derived, so "step omitted" and "step 1" are the same job.
func (s Spec) Normalized() Spec {
	if s.Step == 0 {
		s.Step = 1
	}
	if s.Policy == "" {
		s.Policy = sim.FailFast.String()
	}
	return s
}

// Validate rejects specs the sweep cannot run, with the exact messages the
// CLIs have always printed (prefixed by the command name there, carried in
// an API error envelope by the daemon). Call on a Normalized spec.
func (s Spec) Validate() error {
	if s.Traces == "" {
		return fmt.Errorf("traces glob is required")
	}
	if !strings.Contains(s.Predictor, "%d") {
		return fmt.Errorf("predictor spec %q has no %%d placeholder", s.Predictor)
	}
	if s.Step <= 0 || s.To < s.From {
		return fmt.Errorf("invalid sweep range [%d, %d] step %d", s.From, s.To, s.Step)
	}
	if _, err := s.Mode(); err != nil {
		return err
	}
	if s.Retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", s.Retries)
	}
	return nil
}

// Mode parses the policy name into the sim failure mode.
func (s Spec) Mode() (sim.FailureMode, error) {
	switch s.Policy {
	case sim.FailFast.String():
		return sim.FailFast, nil
	case sim.SkipFailed.String():
		return sim.SkipFailed, nil
	}
	return 0, fmt.Errorf("unknown -policy %q (want failfast or skip)", s.Policy)
}

// ExpandSpecs materialises the swept predictor specs, validating each one
// against the registry before anything runs.
func (s Spec) ExpandSpecs() ([]string, error) {
	var specs []string
	for v := s.From; v <= s.To; v += s.Step {
		spec := fmt.Sprintf(s.Predictor, v)
		if _, err := registry.New(spec); err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// Resolved is a validated spec bound to concrete trace files and expanded
// predictor specs — everything Run needs, and the identity the daemon keys
// jobs by.
type Resolved struct {
	Spec    Spec
	Sources []sim.TraceSource
	Specs   []string
	Preds   []sim.PredictorSpec
}

// Resolve normalises and validates the spec, expands the trace glob (sorted
// path order, like every CLI) and the swept predictor specs. The returned
// value is ready to Run; call AttachDigests first when the run journals or
// the caller needs a content-addressed identity.
func (s Spec) Resolve() (*Resolved, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	paths, err := filepath.Glob(s.Traces)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no traces match %q", s.Traces)
	}
	sort.Strings(paths)
	specs, err := s.ExpandSpecs()
	if err != nil {
		return nil, err
	}
	r := &Resolved{Spec: s, Specs: specs, Sources: make([]sim.TraceSource, len(paths))}
	for i, path := range paths {
		r.Sources[i] = sim.TraceSource{Name: path, Open: openSBBT(path)}
		if compress.FormatForPath(path) == compress.FormatMLZS {
			// Seekable containers additionally offer chunk-granular access;
			// the scheduler verifies eligibility (alignment, intact index)
			// per open and silently streams when it is not met.
			r.Sources[i].OpenChunked = openChunked(path)
		}
	}
	r.Preds = make([]sim.PredictorSpec, len(specs))
	for i, spec := range specs {
		r.Preds[i] = sim.PredictorSpec{Name: spec, New: newFor(spec)}
	}
	return r, nil
}

// openSBBT is the canonical trace-open closure shared by the sweep CLIs:
// transparent decompression, then the SBBT reader.
func openSBBT(path string) func() (bp.Reader, io.Closer, error) {
	return openSBBTWorkers(path, 1)
}

// openSBBTWorkers is openSBBT with a decode worker count: chunked (MLZS)
// containers decompress on a worker pool, byte-identically to sequential.
func openSBBTWorkers(path string, decodeWorkers int) func() (bp.Reader, io.Closer, error) {
	return func() (bp.Reader, io.Closer, error) {
		f, err := compress.OpenFileParallel(path, decodeWorkers)
		if err != nil {
			return nil, nil, err
		}
		r, err := sbbt.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f, nil
	}
}

// openChunked is the chunk-granular open closure for seekable containers.
func openChunked(path string) func() (sim.ChunkedTrace, error) {
	return func() (sim.ChunkedTrace, error) { return chunked.Open(path) }
}

// newFor builds the per-cell predictor constructor for one validated spec.
func newFor(spec string) func() bp.Predictor {
	return func() bp.Predictor {
		p, err := registry.New(spec)
		if err != nil {
			panic(err) // validated at resolve time; specs are immutable strings
		}
		return p
	}
}

// AttachDigests computes the content digest of every trace, so journal cells
// (and the daemon's job identity) are keyed by trace bytes rather than
// paths: a renamed file still replays, swapped bytes never do. An unreadable
// file keeps an empty digest and falls back to its path — the open will fail
// properly during the sweep.
func (r *Resolved) AttachDigests() {
	for i := range r.Sources {
		if d, err := journal.DigestFile(r.Sources[i].Name); err == nil {
			r.Sources[i].Digest = d
		}
	}
}

// Key is the content-addressed identity of this sweep: a SHA-256 over the
// trace digests (paths for undigested sources), the expanded predictor
// specs, the simulation window, and the failure policy — the same
// ingredients as the journal's per-cell keys, lifted to job granularity.
// Two submissions with the same key would produce byte-identical result
// JSON, which is exactly when the daemon may serve a cached job instead of
// re-simulating. Call AttachDigests first for a content-addressed key.
func (r *Resolved) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "mbp-sweep-key-v1\n")
	for _, src := range r.Sources {
		id := src.Digest
		if id == "" {
			id = src.Name
		}
		fmt.Fprintf(h, "trace %s\n", id)
	}
	for _, spec := range r.Specs {
		fmt.Fprintf(h, "pred %s\n", spec)
	}
	fmt.Fprintf(h, "w=0|s=0|policy=%s\n", r.Spec.Policy)
	return hex.EncodeToString(h.Sum(nil))
}

// RunOptions configures one execution of a resolved sweep. The zero value
// runs the parallel scheduler with default workers and cache.
type RunOptions struct {
	// Jobs is the -j scheduler width. 1 with no journal and no cell timeout
	// selects the exact legacy sequential path (RunSetPolicy per value).
	// <= 0 means GOMAXPROCS.
	Jobs int
	// DecodeWorkers is the -decode-j chunk-decode width inside each trace
	// open: seekable (MLZS) containers decompress on this many goroutines,
	// byte-identically to sequential decode. <= 1 decodes sequentially. An
	// execution option only — it never enters Key().
	DecodeWorkers int
	// LegacyWorkers is the -workers fan-out inside each value on the legacy
	// path only.
	LegacyWorkers int
	// CacheBytes has sim.ParallelOptions semantics: 0 default, negative
	// disables the decoded-trace cache.
	CacheBytes int64
	// Policy is the full failure policy, including the retry backoff the
	// wire Spec does not carry.
	Policy sim.Policy
	// Metrics receives scheduler observability when non-nil; results are
	// byte-identical either way.
	Metrics *obs.Collector
	// Journal, CheckpointEvery, Drain and CellTimeout have their
	// sim.ParallelOptions meanings.
	Journal         *journal.Journal
	CheckpointEvery uint64
	Drain           <-chan struct{}
	CellTimeout     time.Duration
}

// Run executes the sweep: one SetResult per swept value, from either path.
// Results and failure tables are deterministic and identical across paths.
// A legacy-path error is wrapped with its predictor spec so callers print
// the same "spec: cause" text the sequential CLI always produced.
func (r *Resolved) Run(opts RunOptions) ([]*sim.SetResult, error) {
	cfg := sim.Config{Metrics: opts.Metrics}
	sources := r.Sources
	if opts.DecodeWorkers > 1 {
		// Swap in parallel-decode open closures. Results are byte-identical,
		// so the sweep identity (Key) is untouched.
		sources = append([]sim.TraceSource(nil), r.Sources...)
		for i := range sources {
			sources[i].Open = openSBBTWorkers(sources[i].Name, opts.DecodeWorkers)
		}
	}
	if opts.Jobs == 1 && opts.Journal == nil && opts.CellTimeout == 0 {
		// Exact legacy path; the drain wrapper fails unstarted and in-flight
		// traces as resumable once a signal lands.
		drained := sim.DrainSources(sources, opts.Drain)
		sets := make([]*sim.SetResult, len(r.Specs))
		for i, spec := range r.Specs {
			set, err := sim.RunSetPolicy(drained, r.Preds[i].New, cfg, opts.LegacyWorkers, opts.Policy)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec, err)
			}
			sets[i] = set
		}
		return sets, nil
	}
	return sim.SweepParallel(sources, r.Preds, cfg, sim.ParallelOptions{
		Workers: opts.Jobs, CacheBytes: opts.CacheBytes, Policy: opts.Policy,
		Metrics: opts.Metrics,
		Journal: opts.Journal, CheckpointEvery: opts.CheckpointEvery,
		Drain: opts.Drain, CellTimeout: opts.CellTimeout,
	})
}
