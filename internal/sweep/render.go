package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"mbplib/internal/sim"
)

// ValueRow is one swept value's aggregate in the JSON output.
type ValueRow struct {
	Predictor string  `json:"predictor"`
	AvgMPKI   float64 `json:"avg_mpki"`
	Scored    int     `json:"scored"`
	Traces    int     `json:"traces"`
}

// FailureRow is one failed trace in the JSON output. It deliberately omits
// the panic stack, which is the one field that differs between sequential
// and parallel execution (the goroutine dumps name different frames), so the
// failures section is byte-identical for any -j.
// Wall time is likewise omitted from JSON: it differs run to run, and the
// JSON output is the machine-diffable format.
type FailureRow struct {
	Trace     string `json:"trace"`
	Class     string `json:"class"`
	Message   string `json:"message"`
	Attempts  int    `json:"attempts"`
	Resumable bool   `json:"resumable,omitempty"`
}

// Report is the JSON document of a sweep (the -json output of mbpsweep and
// the result payload the daemon stores).
type Report struct {
	Values   []ValueRow   `json:"values"`
	Best     string       `json:"best,omitempty"`
	BestMPKI float64      `json:"best_mpki,omitempty"`
	Failures []FailureRow `json:"failures,omitempty"`
}

// Render prints the sweep table (or JSON) and picks the exit code. It only
// sees per-value SetResults, so sequential, parallel and daemon-side
// schedules produce identical bytes — this is the single renderer behind
// mbpsweep, mbpd and mbpctl.
func Render(stdout, stderr io.Writer, specs []string, sets []*sim.SetResult, nTraces int, jsonOut bool) int {
	bestSpec, bestMPKI := "", 0.0
	failed := map[string]sim.TraceFailure{} // trace name -> first failure seen
	anyScored := false
	rows := make([]ValueRow, len(specs))
	for i, set := range sets {
		for _, f := range set.Failures {
			if _, ok := failed[f.Trace]; !ok {
				failed[f.Trace] = f
			}
		}
		scored, sum := 0, 0.0
		for _, r := range set.Results {
			if r == nil {
				continue
			}
			scored++
			sum += r.Metrics.MPKI
		}
		rows[i] = ValueRow{Predictor: specs[i], Scored: scored, Traces: nTraces}
		if scored == 0 {
			continue
		}
		anyScored = true
		rows[i].AvgMPKI = sum / float64(scored)
		if bestSpec == "" || rows[i].AvgMPKI < bestMPKI {
			bestSpec, bestMPKI = specs[i], rows[i].AvgMPKI
		}
	}
	failNames := make([]string, 0, len(failed))
	for name := range failed {
		failNames = append(failNames, name)
	}
	sort.Strings(failNames)

	if jsonOut {
		failRows := make([]FailureRow, 0, len(failNames))
		for _, name := range failNames {
			f := failed[name]
			failRows = append(failRows, FailureRow{f.Trace, f.Class, f.Message, f.Attempts, f.Resumable})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Report{rows, bestSpec, bestMPKI, failRows}); err != nil {
			fmt.Fprintln(stderr, "rendering sweep:", err)
			return ExitTotal
		}
	} else {
		fmt.Fprintf(stdout, "%-40s | avg MPKI (traces scored)\n", "predictor")
		fmt.Fprintln(stdout, strings.Repeat("-", 70))
		for _, row := range rows {
			if row.Scored == 0 {
				fmt.Fprintf(stdout, "%-40s | no trace scored\n", row.Predictor)
				continue
			}
			fmt.Fprintf(stdout, "%-40s | %.4f (%d/%d)\n", row.Predictor, row.AvgMPKI, row.Scored, row.Traces)
		}
		fmt.Fprintln(stdout, strings.Repeat("-", 70))
		if bestSpec != "" {
			fmt.Fprintf(stdout, "best: %s (%.4f MPKI)\n", bestSpec, bestMPKI)
		}
		if len(failed) > 0 {
			fmt.Fprintf(stdout, "\n%d failed trace(s), excluded from averages:\n", len(failed))
			fmt.Fprintf(stdout, "%-40s %-10s %-8s %-9s %-9s %s\n", "trace", "class", "attempts", "time", "resumable", "error")
			for _, name := range failNames {
				f := failed[name]
				resumable := "no"
				if f.Resumable {
					resumable = "yes"
				}
				fmt.Fprintf(stdout, "%-40s %-10s %-8d %-9s %-9s %s\n",
					filepath.Base(f.Trace), f.Class, f.Attempts, fmt.Sprintf("%.2fs", f.Seconds), resumable, f.Message)
			}
		}
	}
	anyResumable := false
	for _, f := range failed {
		if f.Resumable {
			anyResumable = true
		}
	}
	switch {
	case len(failed) == 0:
		return ExitOK
	case anyResumable:
		// Drained work is not a verdict: re-running with -resume finishes
		// the rest, so the drained code wins over partial/total.
		return ExitDrained
	case anyScored:
		return ExitPartial
	default:
		return ExitTotal
	}
}
