// Package api holds the wire types of the mbpd JSON HTTP API: the
// request/response structs, the error envelope, and the mapping between
// HTTP statuses, CLI exit codes and the faults taxonomy. It deliberately
// imports nothing but the standard library — following the daemon/api/cli
// layering of moby, the API package is the contract both sides compile
// against, while internal/daemon owns the behaviour and cmd/mbpctl the
// terminal rendering.
//
// Every response body carries an "api_version" field. Version 1 is served
// under the /v1 path prefix; a breaking change bumps both.
package api

import (
	"encoding/json"
	"net/http"
)

// Version is the api_version value stamped into every v1 body.
const Version = 1

// PathPrefix is the URL prefix of the versioned API.
const PathPrefix = "/v1"

// Job states. A job is terminal in StateDone, StateFailed and
// StateCancelled; Done means the sweep rendered a result (its exit code may
// still be 2 or 3 under -policy skip), Failed means it produced none
// (resolve error or fail-fast abort), Cancelled means a user or daemon
// drain interrupted it (exit code 4, resumable on resubmit).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// TerminalState reports whether a job in the given state will never change
// again (short of a resubmission reviving a cancelled job).
func TerminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// SweepSpec is the wire form of a sweep job: the flags of mbpsweep as JSON.
// It mirrors internal/sweep.Spec field for field but is redeclared here so
// the API package (and thin clients compiled against it) stay free of
// simulator dependencies.
type SweepSpec struct {
	// Traces is a glob of SBBT trace files on the daemon's filesystem.
	Traces string `json:"traces"`
	// Predictor is a registry spec with a %d placeholder.
	Predictor string `json:"predictor"`
	// From, To, Step define the swept values. Step defaults to 1.
	From int `json:"from"`
	To   int `json:"to"`
	Step int `json:"step,omitempty"`
	// Policy is "failfast" (default) or "skip".
	Policy string `json:"policy,omitempty"`
	// Retries is the transient trace-open retry budget.
	Retries int `json:"retries,omitempty"`
}

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	APIVersion int       `json:"api_version,omitempty"`
	Spec       SweepSpec `json:"spec"`
}

// SubmitResponse is the body of a successful POST /v1/jobs.
type SubmitResponse struct {
	APIVersion int    `json:"api_version"`
	ID         string `json:"id"`
	State      string `json:"state"`
	// Cached is true when the submitted spec hashed to a job that already
	// finished: the daemon serves the journalled result without simulating.
	Cached bool `json:"cached,omitempty"`
}

// JobResult is the stored outcome of a finished job: the exit code mbpsweep
// would have returned, plus both renderings of the result — the JSON
// document (byte-identical to `mbpsweep -json`) and the text table
// (byte-identical to plain mbpsweep, wall-time column aside).
//
// Inside a Job envelope the JSON rendering is re-indented by the outer
// encoder; fetch GET /v1/jobs/{id}/result (optionally ?format=text) for the
// verbatim bytes — that endpoint is what makes remote and local runs
// byte-comparable.
type JobResult struct {
	ExitCode int             `json:"exit_code"`
	JSON     json.RawMessage `json:"json,omitempty"`
	Text     string          `json:"text,omitempty"`
}

// Job is the API view of one sweep job (GET /v1/jobs/{id}).
type Job struct {
	APIVersion int       `json:"api_version"`
	ID         string    `json:"id"`
	State      string    `json:"state"`
	Spec       SweepSpec `json:"spec"`
	// ExitCode is meaningful once the job is terminal.
	ExitCode int `json:"exit_code,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// FailureClass is the faults taxonomy class of a failed or cancelled
	// job ("drained" for cancellations, per the drain contract).
	FailureClass string `json:"failure_class,omitempty"`
	// Created/Started/Finished are RFC 3339 timestamps.
	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Result is present once State is "done" (and for cancelled jobs that
	// rendered a partial, resumable report).
	Result *JobResult `json:"result,omitempty"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	APIVersion int   `json:"api_version"`
	Jobs       []Job `json:"jobs"`
}

// Health is the body of GET /v1/healthz. Status is "ok" while the daemon
// accepts jobs and "draining" after the first SIGTERM/SIGINT, when
// submissions are refused (503) and in-flight cells are checkpointing.
type Health struct {
	APIVersion int    `json:"api_version"`
	Status     string `json:"status"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Cancelled  int    `json:"cancelled"`
}

// Health statuses.
const (
	HealthOK       = "ok"
	HealthDraining = "draining"
)

// Error codes carried in the error envelope.
const (
	CodeBadRequest  = "bad_request"  // undecodable body, wrong api_version
	CodeInvalidSpec = "invalid_spec" // spec failed validation or resolution
	CodeNotFound    = "not_found"    // unknown job id
	CodeConflict    = "conflict"     // e.g. cancelling an already-done job
	CodeQueueFull   = "queue_full"   // bounded queue at capacity
	CodeDraining    = "draining"     // daemon refusing work during drain
	CodeInternal    = "internal"     // everything else
)

// ErrorBody is the error half of the envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Class is the faults taxonomy class when the error maps onto one
	// ("corrupt", "drained", "limit", ...), empty otherwise.
	Class string `json:"class,omitempty"`
}

// Error is the envelope every non-2xx response carries.
type Error struct {
	APIVersion int       `json:"api_version"`
	Err        ErrorBody `json:"error"`
}

// StatusForCode maps an error code to its HTTP status — the single place
// the status ↔ code table lives, used by the daemon when writing envelopes.
func StatusForCode(code string) int {
	switch code {
	case CodeBadRequest, CodeInvalidSpec:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeQueueFull, CodeDraining:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ExitForStatus maps an HTTP response status to the exit code a CLI client
// should return, mirroring the sweep CLI exit-code taxonomy: client-side
// misuse (4xx) is a usage error (1), server-side refusal or failure (5xx)
// is a total failure (3). 2xx means the response body decides (a finished
// job's own exit code passes through mbpctl wait verbatim).
func ExitForStatus(status int) int {
	switch {
	case status < 300:
		return 0
	case status < 500:
		return 1
	default:
		return 3
	}
}

// SSE event names on GET /v1/jobs/{id}/events. The stream emits "state" on
// every transition, "snapshot" with an obs metrics snapshot at the
// configured cadence while the job runs, and a final "done" carrying the
// full Job body before the stream closes.
const (
	EventState    = "state"
	EventSnapshot = "snapshot"
	EventDone     = "done"
)
