package utils

import (
	"testing"
	"testing/quick"
)

func TestSignedCounterZeroValue(t *testing.T) {
	var c SignedCounter
	if c.Min() != -2 || c.Max() != 1 {
		t.Fatalf("zero value range = [%d,%d], want [-2,1]", c.Min(), c.Max())
	}
	if !c.Predict() {
		t.Errorf("zero counter should predict taken (value 0 >= 0)")
	}
	if !c.IsWeak() {
		t.Errorf("zero counter should be weak")
	}
}

func TestSignedCounterSaturation(t *testing.T) {
	c := NewSignedCounter(2, 0)
	for i := 0; i < 10; i++ {
		c.SumOrSub(true)
	}
	if c.Get() != 1 {
		t.Errorf("after 10 increments, value = %d, want 1", c.Get())
	}
	if !c.IsSaturated() {
		t.Errorf("counter at max should be saturated")
	}
	for i := 0; i < 10; i++ {
		c.SumOrSub(false)
	}
	if c.Get() != -2 {
		t.Errorf("after 10 decrements, value = %d, want -2", c.Get())
	}
	if !c.IsSaturated() {
		t.Errorf("counter at min should be saturated")
	}
}

func TestSignedCounterWidths(t *testing.T) {
	for w := 1; w <= 8; w++ {
		c := NewSignedCounter(w, 0)
		wantMin, wantMax := -(1 << (w - 1)), 1<<(w-1)-1
		if c.Min() != wantMin || c.Max() != wantMax {
			t.Errorf("width %d: range [%d,%d], want [%d,%d]", w, c.Min(), c.Max(), wantMin, wantMax)
		}
	}
}

func TestSignedCounterSetClamps(t *testing.T) {
	c := NewSignedCounter(3, 100)
	if c.Get() != 3 {
		t.Errorf("Set(100) on width 3 gave %d, want 3", c.Get())
	}
	c.Set(-100)
	if c.Get() != -4 {
		t.Errorf("Set(-100) on width 3 gave %d, want -4", c.Get())
	}
}

func TestSignedCounterInvalidWidth(t *testing.T) {
	for _, w := range []int{0, -1, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSignedCounter(%d, 0) did not panic", w)
				}
			}()
			NewSignedCounter(w, 0)
		}()
	}
}

// Property: a signed counter never leaves its range and SumOrSub moves it by
// exactly 1 unless saturated.
func TestSignedCounterInvariants(t *testing.T) {
	f := func(width uint8, steps []bool) bool {
		w := int(width%8) + 1
		c := NewSignedCounter(w, 0)
		for _, taken := range steps {
			before := c.Get()
			c.SumOrSub(taken)
			after := c.Get()
			if after < c.Min() || after > c.Max() {
				return false
			}
			delta := after - before
			if taken && delta != 1 && !(before == c.Max() && delta == 0) {
				return false
			}
			if !taken && delta != -1 && !(before == c.Min() && delta == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnsignedCounterBasics(t *testing.T) {
	c := NewUnsignedCounter(3, 0)
	if !c.IsZero() {
		t.Errorf("new counter at 0 should be zero")
	}
	for i := 0; i < 20; i++ {
		c.Inc()
	}
	if c.Get() != 7 || !c.IsMax() {
		t.Errorf("after 20 Inc, value = %d, want 7 (max)", c.Get())
	}
	for i := 0; i < 20; i++ {
		c.Dec()
	}
	if c.Get() != 0 {
		t.Errorf("after 20 Dec, value = %d, want 0", c.Get())
	}
	c.Set(100)
	if c.Get() != 7 {
		t.Errorf("Set(100) clamped to %d, want 7", c.Get())
	}
}

func TestUnsignedCounterZeroValue(t *testing.T) {
	var c UnsignedCounter
	if c.Max() != 3 {
		t.Errorf("zero value max = %d, want 3", c.Max())
	}
}

func TestDualCounterUpdatePredict(t *testing.T) {
	var d DualCounter
	for i := 0; i < 5; i++ {
		d.Update(true)
	}
	if !d.Predict() {
		t.Errorf("after 5 taken, Predict() = false")
	}
	for i := 0; i < 12; i++ {
		d.Update(false)
	}
	if d.Predict() {
		t.Errorf("after 12 not-taken, Predict() = true")
	}
}

func TestDualCounterHalvesOnSaturation(t *testing.T) {
	d := NewDualCounter(7)
	for i := 0; i < 7; i++ {
		d.Update(true)
	}
	d.Update(false)
	d.Update(false) // NumNotTaken = 2, NumTaken = 7
	d.Update(true)  // taken side saturated: both halve, then increment
	if d.NumTaken != 4 || d.NumNotTaken != 1 {
		t.Errorf("after halving, counts = (%d,%d), want (4,1)", d.NumTaken, d.NumNotTaken)
	}
}

func TestDualCounterDecay(t *testing.T) {
	d := NewDualCounter(7)
	d.Update(true)
	d.Update(true)
	d.Decay()
	if d.NumTaken != 1 || d.NumNotTaken != 0 {
		t.Errorf("decay gave (%d,%d), want (1,0)", d.NumTaken, d.NumNotTaken)
	}
	d.Decay()
	d.Decay() // equal sides: no further change
	if d.NumTaken != 0 || d.NumNotTaken != 0 {
		t.Errorf("decay at equal sides gave (%d,%d), want (0,0)", d.NumTaken, d.NumNotTaken)
	}
}

func TestDualCounterConfidenceOrdering(t *testing.T) {
	strong := DualCounter{NumTaken: 7, NumNotTaken: 0}
	medium := DualCounter{NumTaken: 3, NumNotTaken: 1}
	weak := DualCounter{NumTaken: 3, NumNotTaken: 3}
	if !(strong.Confidence() < medium.Confidence() || strong.Confidence() == 0) {
		t.Errorf("strong counter not high confidence: %d", strong.Confidence())
	}
	if strong.Confidence() != 0 {
		t.Errorf("7/0 confidence = %d, want 0", strong.Confidence())
	}
	if weak.Confidence() != 2 {
		t.Errorf("3/3 confidence = %d, want 2", weak.Confidence())
	}
	if !strong.IsHighConfidence() || weak.IsHighConfidence() {
		t.Errorf("IsHighConfidence mismatch")
	}
	if medium.Confidence() == 0 {
		t.Errorf("3/1 should not be high confidence")
	}
}

// Property: dual counter counts never exceed the saturation limit.
func TestDualCounterBounds(t *testing.T) {
	f := func(steps []bool) bool {
		d := NewDualCounter(7)
		for _, taken := range steps {
			d.Update(taken)
			if d.NumTaken > 7 || d.NumNotTaken > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
