package utils

import (
	"testing"
)

// Checkpointing serializes predictor state through these accessors; each
// pair must restore an instance that behaves identically from then on.

func TestGlobalHistoryWordsRoundTrip(t *testing.T) {
	for _, length := range []int{1, 17, 64, 65, 200} {
		h := NewGlobalHistory(length)
		rng := NewRand(uint64(length))
		for i := 0; i < 3*length; i++ {
			h.Push(rng.Bool(1, 2))
		}
		restored := NewGlobalHistory(length)
		restored.SetWords(h.Words())
		if restored.String() != h.String() {
			t.Fatalf("length %d: restored %s, want %s", length, restored.String(), h.String())
		}
		// Both must evolve identically afterwards.
		h.Push(true)
		restored.Push(true)
		if restored.String() != h.String() {
			t.Fatalf("length %d: divergence after restore", length)
		}
	}
}

func TestGlobalHistorySetWordsMasksTop(t *testing.T) {
	h := NewGlobalHistory(10)
	h.SetWords([]uint64{0xffff})
	for i := 0; i < 10; i++ {
		if !h.Bit(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	// Bits above the length must have been masked off: packing the low 10
	// outcomes must match the canonical value.
	if got := h.Low(10); got != 0x3ff {
		t.Errorf("Low(10) = %#x, want 0x3ff", got)
	}
}

func TestGlobalHistorySetWordsPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetWords with wrong word count did not panic")
		}
	}()
	NewGlobalHistory(64).SetWords([]uint64{1, 2})
}

func TestFoldedHistorySetValue(t *testing.T) {
	f := NewFoldedHistory(40, 7)
	g := NewGlobalHistory(40)
	rng := NewRand(99)
	for i := 0; i < 100; i++ {
		taken := rng.Bool(1, 2)
		oldest := g.Bit(39)
		f.Update(taken, oldest)
		g.Push(taken)
	}
	restored := NewFoldedHistory(40, 7)
	restored.SetValue(f.Value())
	if restored.Value() != f.Value() {
		t.Fatalf("SetValue: %#x, want %#x", restored.Value(), f.Value())
	}
	// Out-of-width bits are masked, keeping the invariant Update relies on.
	restored.SetValue(1 << 63)
	if restored.Value() != 0 {
		t.Errorf("SetValue did not mask to width: %#x", restored.Value())
	}
}

func TestPathHistoryStateRoundTrip(t *testing.T) {
	p := NewPathHistory(9, 5)
	rng := NewRand(7)
	for i := 0; i < 25; i++ {
		p.Push(rng.Uint64())
	}
	buf, head, packed := p.State()
	restored := NewPathHistory(9, 5)
	restored.SetState(buf, head, packed)
	if restored.Packed() != p.Packed() {
		t.Fatalf("Packed: %#x, want %#x", restored.Packed(), p.Packed())
	}
	for i := 0; i < 9; i++ {
		if restored.At(i) != p.At(i) {
			t.Fatalf("At(%d): %d, want %d", i, restored.At(i), p.At(i))
		}
	}
	p.Push(42)
	restored.Push(42)
	if restored.Packed() != p.Packed() || restored.At(0) != p.At(0) {
		t.Fatal("divergence after restore")
	}
}

func TestPathHistorySetStateValidates(t *testing.T) {
	p := NewPathHistory(4, 8)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"short buf", func() { p.SetState([]uint16{1}, 0, 0) }},
		{"head out of range", func() { p.SetState(make([]uint16, 4), 4, 0) }},
		{"negative head", func() { p.SetState(make([]uint16, 4), -1, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestRandStateRoundTrip(t *testing.T) {
	r := NewRand(12345)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	restored := &Rand{}
	restored.SetState(r.State())
	for i := 0; i < 10; i++ {
		if a, b := r.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("draw %d: %d vs %d", i, a, b)
		}
	}
	// The zero state maps to 1 on both sides, matching Seed's convention.
	var z Rand
	if z.State() != 1 {
		t.Errorf("zero-value State = %d, want 1", z.State())
	}
	z.SetState(0)
	if z.State() != 1 {
		t.Errorf("SetState(0) left state %d, want 1", z.State())
	}
}
