package utils

import (
	"fmt"
	"math/bits"
)

// GlobalHistory maintains the outcomes of the most recent branches as a
// bit vector of arbitrary length. Bit 0 is the most recent outcome. It is
// the Go analogue of the std::bitset-based global history of Listing 2,
// extended to lengths beyond 64 bits for TAGE-class predictors.
type GlobalHistory struct {
	length int
	words  []uint64
}

// NewGlobalHistory returns a history register holding length outcomes,
// initially all zero (not taken).
func NewGlobalHistory(length int) *GlobalHistory {
	if length < 1 {
		panic(fmt.Sprintf("utils: invalid history length %d", length))
	}
	return &GlobalHistory{length: length, words: make([]uint64, (length+63)/64)}
}

// Len returns the history length in bits.
func (h *GlobalHistory) Len() int { return h.length }

// Push shifts the history left by one and records the new outcome in bit 0.
func (h *GlobalHistory) Push(taken bool) {
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := range h.words {
		next := h.words[i] >> 63
		h.words[i] = h.words[i]<<1 | carry
		carry = next
	}
	h.maskTop()
}

func (h *GlobalHistory) maskTop() {
	rem := h.length % 64
	if rem != 0 {
		h.words[len(h.words)-1] &= 1<<rem - 1
	}
}

// Bit returns outcome i, where 0 is the most recent branch.
func (h *GlobalHistory) Bit(i int) bool {
	if i < 0 || i >= h.length {
		panic(fmt.Sprintf("utils: history bit %d out of range [0,%d)", i, h.length))
	}
	return h.words[i/64]>>(i%64)&1 == 1
}

// Low returns the n most recent outcomes packed in a uint64 (n ≤ 64), the
// equivalent of bitset::to_ullong for short histories.
func (h *GlobalHistory) Low(n int) uint64 {
	if n < 0 || n > 64 || n > h.length {
		panic(fmt.Sprintf("utils: Low(%d) out of range for history of length %d", n, h.length))
	}
	if n == 0 {
		return 0
	}
	v := h.words[0]
	if n < 64 {
		v &= 1<<n - 1
	}
	return v
}

// Uint64 returns the min(64,Len) most recent outcomes packed in a uint64.
func (h *GlobalHistory) Uint64() uint64 {
	if h.length >= 64 {
		return h.words[0]
	}
	return h.Low(h.length)
}

// Fold XOR-folds the n most recent outcomes down to `bits` bits. It is the
// slow reference implementation; predictors on hot paths should use
// FoldedHistory, which maintains the same value incrementally.
func (h *GlobalHistory) Fold(n, bits int) uint64 {
	if bits < 1 || bits > 63 {
		panic(fmt.Sprintf("utils: invalid fold width %d", bits))
	}
	if n > h.length {
		panic(fmt.Sprintf("utils: fold of %d bits exceeds history length %d", n, h.length))
	}
	var folded uint64
	for i := 0; i < n; i += bits {
		var chunk uint64
		for j := 0; j < bits && i+j < n; j++ {
			if h.Bit(i + j) {
				chunk |= 1 << j
			}
		}
		folded ^= chunk
	}
	return folded
}

// Reset clears the history to all zeros.
func (h *GlobalHistory) Reset() {
	for i := range h.words {
		h.words[i] = 0
	}
}

// Words returns a copy of the packed history words (bit 0 of word 0 is the
// most recent outcome), for checkpointing. The slice length is fixed by the
// history length passed to NewGlobalHistory.
func (h *GlobalHistory) Words() []uint64 {
	w := make([]uint64, len(h.words))
	copy(w, h.words)
	return w
}

// SetWords restores a state previously captured by Words. The word count
// must match the history length; callers restoring from external bytes are
// expected to have validated the configuration first.
func (h *GlobalHistory) SetWords(words []uint64) {
	if len(words) != len(h.words) {
		panic(fmt.Sprintf("utils: SetWords with %d words, history needs %d", len(words), len(h.words)))
	}
	copy(h.words, words)
	h.maskTop()
}

// String renders the history most-recent-first as a bit string, which is
// convenient in tests and debug output.
func (h *GlobalHistory) String() string {
	buf := make([]byte, h.length)
	for i := 0; i < h.length; i++ {
		if h.Bit(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// FoldedHistory incrementally maintains GlobalHistory.Fold(length, width):
// the XOR-fold of the most recent `length` outcomes into `width` bits.
// TAGE-class predictors keep one per tagged table for index and tag
// computation; updating it is O(1) per branch instead of O(length).
type FoldedHistory struct {
	value  uint64
	length int // history bits folded
	width  int // output width in bits
}

// NewFoldedHistory returns a folded history of `length` outcomes compressed
// into `width` bits (1 ≤ width ≤ 63).
func NewFoldedHistory(length, width int) *FoldedHistory {
	if width < 1 || width > 63 {
		panic(fmt.Sprintf("utils: invalid folded width %d", width))
	}
	if length < 0 {
		panic(fmt.Sprintf("utils: invalid folded length %d", length))
	}
	return &FoldedHistory{length: length, width: width}
}

// Value returns the current folded value.
func (f *FoldedHistory) Value() uint64 { return f.value }

// Width returns the output width in bits.
func (f *FoldedHistory) Width() int { return f.width }

// Length returns the number of history outcomes folded.
func (f *FoldedHistory) Length() int { return f.length }

// Update shifts in the newest outcome and shifts out the outcome that falls
// off the end of the folded window. oldest must be the outcome that was at
// position length-1 of the unfolded history before the update (i.e. the bit
// leaving the window).
func (f *FoldedHistory) Update(newest, oldest bool) {
	if f.length == 0 {
		return
	}
	// Rotate-left by 1 within width bits, inserting the new outcome.
	f.value = f.value<<1 | f.value>>(f.width-1)&1
	if newest {
		f.value ^= 1
	}
	// The leaving bit had been folded into position length % width before
	// the rotation; after rotating it sits one position higher.
	if oldest {
		f.value ^= 1 << (f.length % f.width)
	}
	f.value &= 1<<f.width - 1
}

// Reset clears the folded value.
func (f *FoldedHistory) Reset() { f.value = 0 }

// SetValue restores a folded value previously read with Value, masked to
// the configured width, for checkpointing.
func (f *FoldedHistory) SetValue(v uint64) { f.value = v & (1<<f.width - 1) }

// PathHistory records the low bits of the addresses of recent branches,
// used by path-based predictors (hashed perceptron, TAGE index hashing).
type PathHistory struct {
	bitsPer int
	length  int
	buf     []uint16
	head    int
	packed  uint64
}

// NewPathHistory returns a path history recording `length` addresses at
// `bitsPer` bits each (bitsPer ≤ 16, length*bitsPer arbitrary; the packed
// view exposes the most recent 64 bits).
func NewPathHistory(length, bitsPer int) *PathHistory {
	if length < 1 || bitsPer < 1 || bitsPer > 16 {
		panic(fmt.Sprintf("utils: invalid path history length=%d bitsPer=%d", length, bitsPer))
	}
	return &PathHistory{bitsPer: bitsPer, length: length, buf: make([]uint16, length)}
}

// Push records the address of a new branch.
func (p *PathHistory) Push(ip uint64) {
	v := uint16(ip & (1<<p.bitsPer - 1))
	p.head = (p.head + 1) % p.length
	p.buf[p.head] = v
	p.packed = p.packed<<p.bitsPer | uint64(v)
}

// Packed returns the concatenation of the most recent addresses, newest in
// the low bits, truncated to 64 bits.
func (p *PathHistory) Packed() uint64 { return p.packed }

// At returns the recorded low bits of the i-th most recent branch address
// (0 is the newest).
func (p *PathHistory) At(i int) uint64 {
	if i < 0 || i >= p.length {
		panic(fmt.Sprintf("utils: path history index %d out of range [0,%d)", i, p.length))
	}
	idx := (p.head - i%p.length + p.length) % p.length
	return uint64(p.buf[idx])
}

// Reset clears the path history.
func (p *PathHistory) Reset() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.head, p.packed = 0, 0
}

// State returns a copy of the ring buffer plus the head index and packed
// view, for checkpointing.
func (p *PathHistory) State() (buf []uint16, head int, packed uint64) {
	buf = make([]uint16, len(p.buf))
	copy(buf, p.buf)
	return buf, p.head, p.packed
}

// SetState restores a state previously captured by State. The buffer length
// must match the configured history length and head must index into it.
func (p *PathHistory) SetState(buf []uint16, head int, packed uint64) {
	if len(buf) != len(p.buf) {
		panic(fmt.Sprintf("utils: SetState with %d entries, path history needs %d", len(buf), len(p.buf)))
	}
	if head < 0 || head >= p.length {
		panic(fmt.Sprintf("utils: SetState head %d out of range [0,%d)", head, p.length))
	}
	copy(p.buf, buf)
	p.head, p.packed = head, packed
}

// XorFold folds a 64-bit value down to `width` bits by XOR-ing `width`-bit
// chunks together, the hash used in Listing 2 to combine the branch address
// with the history register.
func XorFold(x uint64, width int) uint64 {
	if width < 1 || width > 63 {
		panic(fmt.Sprintf("utils: invalid XorFold width %d", width))
	}
	var folded uint64
	for x != 0 {
		folded ^= x & (1<<width - 1)
		x >>= width
	}
	return folded
}

// XorFoldWide is XorFold restricted to widths of at least 10 bits, where
// seven width-sized chunks cover any 64-bit value: the chunk loop becomes a
// branch-free unrolled XOR tree. Masking once at the end equals masking
// every chunk (AND distributes over XOR), and Go defines shifts past the
// operand width as zero, so surplus terms vanish. Batch kernels use it with
// their loop-invariant table widths; XorFold remains the general form and
// the semantic reference — for any width in [10, 63] the two agree exactly.
func XorFoldWide(x uint64, width int) uint64 {
	w := uint(width) & 63
	return (x ^ x>>w ^ x>>(2*w) ^ x>>(3*w) ^ x>>(4*w) ^ x>>(5*w) ^ x>>(6*w)) & (1<<w - 1)
}

// Mix is a cheap 64-bit integer finaliser (xorshift-multiply, as in
// splitmix64) used to decorrelate table indices derived from addresses.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Log2 returns floor(log2(x)) for x > 0.
func Log2(x uint64) int {
	if x == 0 {
		panic("utils: Log2(0)")
	}
	return 63 - bits.LeadingZeros64(x)
}
