package utils

// Rand is a small deterministic xorshift64* pseudo-random number generator.
// Predictors that need randomness (BATAGE's allocation throttling, TAGE's
// randomized allocation) embed one so that simulations stay reproducible,
// which the cross-simulator identity check of §VII-C depends on. The zero
// value is usable and equivalent to NewRand(1).
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (0 is replaced by 1, since
// the all-zero state is a fixed point of xorshift).
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	r.state = seed
}

// State returns the raw generator state, for checkpointing. Restoring it
// with SetState resumes the exact pseudo-random sequence.
func (r *Rand) State() uint64 {
	if r.state == 0 {
		return 1
	}
	return r.state
}

// SetState restores a state previously read with State (0 is replaced by 1,
// as in Seed).
func (r *Rand) SetState(state uint64) {
	if state == 0 {
		state = 1
	}
	r.state = state
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	if r.state == 0 {
		r.state = 1
	}
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("utils: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns a pseudo-random outcome with probability num/den of true.
func (r *Rand) Bool(num, den int) bool {
	if den <= 0 || num < 0 {
		panic("utils: Bool with invalid probability")
	}
	return r.Intn(den) < num
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
