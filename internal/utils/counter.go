// Package utils is the utilities library of the suite (§V of the MBPlib
// paper): software implementations of the components that appear inside
// most branch predictors — fixed-width saturating counters, branch history
// registers, folded histories, index hashing and a deterministic PRNG.
//
// The components are deliberately small and allocation-free so predictors
// can be written by gluing them together, as in the 20-line GShare of
// Listing 2.
package utils

import "fmt"

// SignedCounter is a fixed-width signed saturating counter, the Go analogue
// of MBPlib's i2/i3/... counter classes. A counter of width w saturates at
// [-2^(w-1), 2^(w-1)-1]. The zero value is a centred counter of width 2
// (the ubiquitous two-bit counter).
//
// The prediction convention throughout the library is that non-negative
// values predict taken, matching `table[i] >= 0` in Listing 2.
type SignedCounter struct {
	v     int32
	width uint8 // 0 means the default width of 2
}

// NewSignedCounter returns a counter of the given bit width (1 to 31)
// initialised to v (clamped to the representable range).
func NewSignedCounter(width int, v int) SignedCounter {
	if width < 1 || width > 31 {
		panic(fmt.Sprintf("utils: invalid counter width %d", width))
	}
	c := SignedCounter{width: uint8(width)}
	c.Set(v)
	return c
}

func (c *SignedCounter) bits() int {
	if c.width == 0 {
		return 2
	}
	return int(c.width)
}

// Min returns the saturation floor, -2^(w-1).
func (c *SignedCounter) Min() int { return -(1 << (c.bits() - 1)) }

// Max returns the saturation ceiling, 2^(w-1)-1.
func (c *SignedCounter) Max() int { return 1<<(c.bits()-1) - 1 }

// Get returns the current value.
func (c *SignedCounter) Get() int { return int(c.v) }

// Set stores v clamped to the counter range.
func (c *SignedCounter) Set(v int) {
	if v < c.Min() {
		v = c.Min()
	}
	if v > c.Max() {
		v = c.Max()
	}
	c.v = int32(v)
}

// Add increments the counter by d, saturating.
func (c *SignedCounter) Add(d int) { c.Set(int(c.v) + d) }

// SumOrSub increments the counter when taken is true and decrements it
// otherwise, saturating at the width bounds. It mirrors i2::sumOrSub and is
// the single hottest operation of table-based predictors, so it avoids the
// general Set path.
func (c *SignedCounter) SumOrSub(taken bool) {
	if taken {
		if max := int32(1)<<(c.bits()-1) - 1; c.v < max {
			c.v++
		}
	} else {
		if min := -(int32(1) << (c.bits() - 1)); c.v > min {
			c.v--
		}
	}
}

// Predict reports the outcome encoded by the counter: taken iff the value
// is non-negative.
func (c *SignedCounter) Predict() bool { return c.v >= 0 }

// Bounds returns the saturation bounds [Min, Max] as int32s. Batch kernels
// hoist them out of their loops (every counter of a table shares a width)
// and update through SumOrSubBounded.
func (c *SignedCounter) Bounds() (min, max int32) {
	b := c.bits()
	return -(int32(1) << (b - 1)), int32(1)<<(b-1) - 1
}

// AddClamped adds d (±1) to the counter, saturating at the caller-hoisted
// bounds (see Bounds). Equivalent to SumOrSub(d > 0), but the outcome is
// data rather than control: callers that update several counters with the
// same outcome (perceptron weight rows) compute d once and keep the inner
// loop free of data-dependent branches.
func (c *SignedCounter) AddClamped(d, min, max int32) {
	v := c.v + d
	if v > max {
		v = max
	}
	if v < min {
		v = min
	}
	c.v = v
}

// PredictSumOrSub reads the prediction and applies the SumOrSub update in
// one step: it returns Predict() as of entry and then moves the counter
// toward the outcome, saturating at the caller-hoisted bounds (see Bounds).
// Equivalent to Predict followed by SumOrSub, but written so the update is
// branch-free on the outcome: `taken` is data, not control, and compiles to
// conditional moves. Branch outcomes are near-random by construction — a
// predictable branch would not need a predictor — so a data-dependent jump
// here is the single largest stall of a table-predictor loop. This is the
// workhorse of the batch kernels.
func (c *SignedCounter) PredictSumOrSub(taken bool, min, max int32) bool {
	v := c.v
	pred := v >= 0
	inc := int32(-1)
	if taken {
		inc = 1
	}
	v += inc
	if v > max {
		v = max
	}
	if v < min {
		v = min
	}
	c.v = v
	return pred
}

// IsSaturated reports whether the counter sits at either extreme.
func (c *SignedCounter) IsSaturated() bool {
	return int(c.v) == c.Min() || int(c.v) == c.Max()
}

// IsWeak reports whether the counter holds one of its two central values
// (-1 or 0), i.e. the prediction would flip after a single mistraining.
func (c *SignedCounter) IsWeak() bool { return c.v == 0 || c.v == -1 }

// UnsignedCounter is a fixed-width unsigned saturating counter in
// [0, 2^w-1]. It backs structures such as TAGE useful counters. The zero
// value is a width-2 counter at 0.
type UnsignedCounter struct {
	v     uint32
	width uint8 // 0 means the default width of 2
}

// NewUnsignedCounter returns a counter of the given bit width (1 to 32)
// initialised to v (clamped).
func NewUnsignedCounter(width int, v uint) UnsignedCounter {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("utils: invalid counter width %d", width))
	}
	c := UnsignedCounter{width: uint8(width)}
	c.Set(v)
	return c
}

func (c *UnsignedCounter) bits() int {
	if c.width == 0 {
		return 2
	}
	return int(c.width)
}

// Max returns the saturation ceiling, 2^w-1.
func (c *UnsignedCounter) Max() uint { return 1<<c.bits() - 1 }

// Get returns the current value.
func (c *UnsignedCounter) Get() uint { return uint(c.v) }

// Set stores v clamped to [0, Max].
func (c *UnsignedCounter) Set(v uint) {
	if v > c.Max() {
		v = c.Max()
	}
	c.v = uint32(v)
}

// Inc increments the counter, saturating at Max.
func (c *UnsignedCounter) Inc() {
	if uint(c.v) < c.Max() {
		c.v++
	}
}

// Dec decrements the counter, saturating at 0.
func (c *UnsignedCounter) Dec() {
	if c.v > 0 {
		c.v--
	}
}

// IsMax reports whether the counter is saturated high.
func (c *UnsignedCounter) IsMax() bool { return uint(c.v) == c.Max() }

// IsZero reports whether the counter is at 0.
func (c *UnsignedCounter) IsZero() bool { return c.v == 0 }

// DualCounter is the Bayesian dual counter used by BATAGE: it counts taken
// and not-taken occurrences separately, each saturating at max. When one
// side would overflow, both are halved, implementing the exponential decay
// the predictor relies on.
type DualCounter struct {
	NumTaken    uint8
	NumNotTaken uint8
	max         uint8 // 0 means the default max of 7 (3-bit counts)
}

// NewDualCounter returns a dual counter whose sides saturate at max
// (1 ≤ max ≤ 255).
func NewDualCounter(max int) DualCounter {
	if max < 1 || max > 255 {
		panic(fmt.Sprintf("utils: invalid dual counter max %d", max))
	}
	return DualCounter{max: uint8(max)}
}

func (d *DualCounter) limit() uint8 {
	if d.max == 0 {
		return 7
	}
	return d.max
}

// Update records one outcome. If the corresponding side is saturated, both
// sides are halved first so recent behaviour dominates.
func (d *DualCounter) Update(taken bool) {
	if taken {
		if d.NumTaken == d.limit() {
			d.NumTaken /= 2
			d.NumNotTaken /= 2
		}
		d.NumTaken++
	} else {
		if d.NumNotTaken == d.limit() {
			d.NumTaken /= 2
			d.NumNotTaken /= 2
		}
		d.NumNotTaken++
	}
}

// Decay moves the counter one step toward the uniform (fully uncertain)
// state by decrementing the larger side, as BATAGE's controlled decay does.
func (d *DualCounter) Decay() {
	if d.NumTaken > d.NumNotTaken {
		d.NumTaken--
	} else if d.NumNotTaken > d.NumTaken {
		d.NumNotTaken--
	}
}

// Predict returns the majority outcome; ties predict taken.
func (d *DualCounter) Predict() bool { return d.NumTaken >= d.NumNotTaken }

// Confidence classifies the estimated misprediction probability of the
// counter into high (0), medium (1) and low (2) confidence, approximating
// the BATAGE dual-counter confidence test: the probability estimate is
// (m+1)/(n+m+2) where n is the majority count and m the minority count.
func (d *DualCounter) Confidence() int {
	n, m := d.NumTaken, d.NumNotTaken
	if n < m {
		n, m = m, n
	}
	// Estimated misprediction probability is (m+1)/(n+m+2).
	switch {
	case int(n+1) >= 3*int(m+1): // p < 1/3: high confidence
		return 0
	case int(n+1) >= 2*int(m+1)-1: // p around 1/3..2/5: medium (n+1 >= 2(m+1)-1 widens the band)
		return 1
	default:
		return 2
	}
}

// IsHighConfidence reports Confidence() == 0.
func (d *DualCounter) IsHighConfidence() bool { return d.Confidence() == 0 }
