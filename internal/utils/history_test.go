package utils

import (
	"testing"
	"testing/quick"
)

func TestGlobalHistoryPushBit(t *testing.T) {
	h := NewGlobalHistory(8)
	h.Push(true)
	h.Push(false)
	h.Push(true)
	// Most recent first: 1, 0, 1, 0...
	want := []bool{true, false, true, false, false, false, false, false}
	for i, w := range want {
		if h.Bit(i) != w {
			t.Errorf("Bit(%d) = %v, want %v (history %s)", i, h.Bit(i), w, h)
		}
	}
	if h.Uint64() != 0b101 {
		t.Errorf("Uint64() = %#b, want 0b101", h.Uint64())
	}
}

func TestGlobalHistoryLong(t *testing.T) {
	h := NewGlobalHistory(200)
	// Push 200 alternating outcomes; the first pushed ends up at index 199.
	for i := 0; i < 200; i++ {
		h.Push(i%2 == 0)
	}
	// The last pushed (i=199, odd, false) is at index 0.
	for i := 0; i < 200; i++ {
		want := (199-i)%2 == 0
		if h.Bit(i) != want {
			t.Fatalf("Bit(%d) = %v, want %v", i, h.Bit(i), want)
		}
	}
	// One more push shifts everything.
	h.Push(true)
	if !h.Bit(0) {
		t.Errorf("Bit(0) after push(true) = false")
	}
	if h.Bit(1) {
		t.Errorf("Bit(1) should be the previous Bit(0) = false")
	}
}

func TestGlobalHistoryLowAndReset(t *testing.T) {
	h := NewGlobalHistory(64)
	for i := 0; i < 64; i++ {
		h.Push(true)
	}
	if h.Low(5) != 0b11111 {
		t.Errorf("Low(5) = %#b, want 0b11111", h.Low(5))
	}
	if h.Uint64() != ^uint64(0) {
		t.Errorf("Uint64() = %#x, want all ones", h.Uint64())
	}
	h.Reset()
	if h.Uint64() != 0 {
		t.Errorf("after Reset, Uint64() = %#x", h.Uint64())
	}
}

func TestGlobalHistoryTopMasked(t *testing.T) {
	h := NewGlobalHistory(3)
	for i := 0; i < 10; i++ {
		h.Push(true)
	}
	if h.Uint64() != 0b111 {
		t.Errorf("history of length 3 packed = %#b, want 0b111", h.Uint64())
	}
}

// Property: FoldedHistory tracks GlobalHistory.Fold exactly for arbitrary
// outcome sequences, lengths and widths.
func TestFoldedHistoryMatchesReference(t *testing.T) {
	f := func(lengthSeed, widthSeed uint8, outcomes []bool) bool {
		length := int(lengthSeed%130) + 1
		width := int(widthSeed%16) + 2
		h := NewGlobalHistory(length + 1) // +1 so the leaving bit is still readable
		fh := NewFoldedHistory(length, width)
		for _, o := range outcomes {
			oldest := h.Bit(length - 1)
			h.Push(o)
			fh.Update(o, oldest)
			if fh.Value() != h.Fold(length, width) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFoldedHistoryZeroLength(t *testing.T) {
	fh := NewFoldedHistory(0, 8)
	fh.Update(true, false)
	if fh.Value() != 0 {
		t.Errorf("zero-length fold value = %d, want 0", fh.Value())
	}
}

func TestPathHistory(t *testing.T) {
	p := NewPathHistory(4, 8)
	p.Push(0x1234)
	p.Push(0xabcd)
	if p.At(0) != 0xcd {
		t.Errorf("At(0) = %#x, want 0xcd", p.At(0))
	}
	if p.At(1) != 0x34 {
		t.Errorf("At(1) = %#x, want 0x34", p.At(1))
	}
	if p.Packed()&0xffff != 0x34cd {
		t.Errorf("Packed() low 16 = %#x, want 0x34cd", p.Packed()&0xffff)
	}
	p.Reset()
	if p.Packed() != 0 || p.At(0) != 0 {
		t.Errorf("Reset did not clear path history")
	}
}

func TestPathHistoryWraps(t *testing.T) {
	p := NewPathHistory(2, 4)
	p.Push(1)
	p.Push(2)
	p.Push(3)
	if p.At(0) != 3 || p.At(1) != 2 {
		t.Errorf("after wrap, At = (%d,%d), want (3,2)", p.At(0), p.At(1))
	}
}

func TestXorFold(t *testing.T) {
	if got := XorFold(0, 10); got != 0 {
		t.Errorf("XorFold(0,10) = %d", got)
	}
	// 0xff ^ 0xff folded at 8 bits = 0.
	if got := XorFold(0xffff, 8); got != 0 {
		t.Errorf("XorFold(0xffff,8) = %#x, want 0", got)
	}
	if got := XorFold(0xff00, 8); got != 0xff {
		t.Errorf("XorFold(0xff00,8) = %#x, want 0xff", got)
	}
}

// Property: XorFold output always fits in the requested width and folding a
// value already within the width is the identity.
func TestXorFoldProperties(t *testing.T) {
	f := func(x uint64, widthSeed uint8) bool {
		width := int(widthSeed%63) + 1
		folded := XorFold(x, width)
		if folded >= 1<<width {
			return false
		}
		small := x & (1<<width - 1)
		return XorFold(small, width) == small
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixIsDeterministicAndSpreads(t *testing.T) {
	if Mix(42) != Mix(42) {
		t.Errorf("Mix not deterministic")
	}
	if Mix(1) == Mix(2) {
		t.Errorf("Mix(1) == Mix(2): suspicious collision")
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 1 << 52: 52}
	for x, want := range cases {
		if got := Log2(x); got != want {
			t.Errorf("Log2(%d) = %d, want %d", x, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRand(8)
	if NewRand(7).Uint64() == c.Uint64() {
		t.Errorf("different seeds produced identical first value")
	}
}

func TestRandZeroValueAndZeroSeed(t *testing.T) {
	var r Rand
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Errorf("zero-value Rand stuck at 0")
	}
	s := NewRand(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Errorf("zero-seeded Rand stuck at 0")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 10 {
		t.Errorf("Intn(10) visited only %d values in 1000 draws", len(seen))
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(11)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(1, 4) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("Bool(1,4) frequency = %.3f, want about 0.25", frac)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}
