package compress

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"mbplib/internal/faults"
)

// Format identifies a compression container.
type Format int

// Supported formats.
const (
	FormatRaw Format = iota
	FormatGzip
	FormatMLZ
	FormatMLZS
)

// String returns the lower-case conventional name of the format.
func (f Format) String() string {
	switch f {
	case FormatRaw:
		return "raw"
	case FormatGzip:
		return "gzip"
	case FormatMLZ:
		return "mlz"
	case FormatMLZS:
		return "mlzs"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Detect sniffs the compression format from the first bytes of a stream.
func Detect(prefix []byte) Format {
	if len(prefix) >= 2 && prefix[0] == 0x1f && prefix[1] == 0x8b {
		return FormatGzip
	}
	if len(prefix) >= 4 && prefix[0] == 'M' && prefix[1] == 'L' && prefix[2] == 'Z' {
		switch prefix[3] {
		case '1':
			return FormatMLZ
		case 'S':
			return FormatMLZS
		}
	}
	return FormatRaw
}

// FormatForPath chooses a compression format from a file-name extension:
// ".gz" selects gzip, ".mlz" selects MLZ, anything else is raw.
func FormatForPath(path string) Format {
	switch {
	case strings.HasSuffix(path, ".gz"):
		return FormatGzip
	case strings.HasSuffix(path, ".mlzs"):
		return FormatMLZS
	case strings.HasSuffix(path, ".mlz"):
		return FormatMLZ
	default:
		return FormatRaw
	}
}

// NewReader wraps r with a decompressor chosen by sniffing the stream's
// magic bytes, so callers can open traces without knowing how (or whether)
// they were compressed. Raw streams pass through buffered.
func NewReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("compress: sniffing stream: %w", err)
	}
	switch Detect(prefix) {
	case FormatGzip:
		zr, err := gzip.NewReader(br)
		if err != nil {
			// The magic matched but the rest of the gzip header did not
			// parse: the stream is damaged, not merely unrecognized.
			return nil, fmt.Errorf("compress: opening gzip stream: %w: %w", err, faults.ErrCorrupt)
		}
		return zr, nil
	case FormatMLZ:
		return NewMLZReader(br)
	case FormatMLZS:
		return NewMLZSReader(br, 1)
	default:
		return br, nil
	}
}

// NewReaderParallel is NewReader with a decode worker count: formats with
// independent chunks (MLZS) decompress on a pool of decodeWorkers
// goroutines, all others fall back to the sequential path. The delivered
// bytes are identical at any worker count.
func NewReaderParallel(r io.Reader, decodeWorkers int) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("compress: sniffing stream: %w", err)
	}
	if Detect(prefix) == FormatMLZS {
		return NewMLZSReader(br, decodeWorkers)
	}
	return NewReader(br)
}

// nopWriteCloser adapts a plain Writer to WriteCloser for the raw format.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// NewWriter returns a WriteCloser that compresses into w using the given
// format. For gzip, LevelBest maps to gzip.BestCompression and LevelFast to
// gzip.BestSpeed. Closing the returned writer flushes the container but
// does not close w.
func NewWriter(w io.Writer, format Format, level Level) (io.WriteCloser, error) {
	switch format {
	case FormatRaw:
		return nopWriteCloser{w}, nil
	case FormatGzip:
		gl := gzip.BestSpeed
		if level == LevelBest {
			gl = gzip.BestCompression
		}
		zw, err := gzip.NewWriterLevel(w, gl)
		if err != nil {
			return nil, fmt.Errorf("compress: creating gzip writer: %w", err)
		}
		return zw, nil
	case FormatMLZ:
		return NewMLZWriter(w, level), nil
	case FormatMLZS:
		return NewMLZSWriter(w, MLZSOptions{Level: level}), nil
	default:
		return nil, fmt.Errorf("compress: unknown format %v", format)
	}
}

// File bundles an os.File with its (de)compression layer so both get closed
// together.
type File struct {
	io.Reader
	io.Writer
	closers []io.Closer
}

// Close closes the compression layer and then the underlying file.
func (f *File) Close() error {
	var first error
	for _, c := range f.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenFile opens path for reading with automatic decompression.
func OpenFile(path string) (*File, error) {
	return OpenFileParallel(path, 1)
}

// OpenFileParallel opens path for reading with automatic decompression,
// decoding chunked containers (MLZS) on decodeWorkers goroutines. The
// delivered bytes are identical to OpenFile at any worker count; closing
// the File releases the decode goroutines.
func OpenFileParallel(path string, decodeWorkers int) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReaderParallel(f, decodeWorkers)
	if err != nil {
		f.Close() //mbpvet:ignore droppederr -- error path: the NewReader failure outranks a close failure on a read-only file
		return nil, err
	}
	cf := &File{Reader: r, closers: []io.Closer{f}}
	if c, ok := r.(io.Closer); ok {
		cf.closers = []io.Closer{c, f}
	}
	return cf, nil
}

// CreateFile creates path for writing, compressing according to the file
// extension (see FormatForPath) at the given level. Output is buffered.
func CreateFile(path string, level Level) (*File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	wc, err := NewWriter(bw, FormatForPath(path), level)
	if err != nil {
		f.Close() //mbpvet:ignore droppederr -- error path: nothing was written yet, the NewWriter failure is the one to report
		return nil, err
	}
	return &File{Writer: wc, closers: []io.Closer{wc, flushCloser{bw}, f}}, nil
}

// CreateMLZSFile creates path for writing as an MLZS container with
// explicit options (chunk size, alignment, parallel compression workers),
// for callers that need more than CreateFile's defaults. Output is buffered.
func CreateMLZSFile(path string, opts MLZSOptions) (*File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	wc := NewMLZSWriter(bw, opts)
	return &File{Writer: wc, closers: []io.Closer{wc, flushCloser{bw}, f}}, nil
}

// flushCloser flushes a bufio.Writer at Close time.
type flushCloser struct{ w *bufio.Writer }

func (f flushCloser) Close() error { return f.w.Flush() }
