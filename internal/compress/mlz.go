// Package compress provides the trace compression layer of the suite.
//
// The paper distributes SBBT traces compressed with zstandard and keeps
// gzip support for the original CBP5 trace distribution (§IV, §VII-D).
// zstd is not part of the Go standard library, so this package implements
// MLZ, a from-scratch byte-oriented LZ77 block format in the LZ4/zstd
// family: much faster to decompress than DEFLATE and with a better ratio
// on the highly redundant SBBT packet stream. gzip is provided through
// compress/gzip. NewReader auto-detects the format from magic bytes, so
// simulators can open traces compressed either way (or not at all).
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"mbplib/internal/faults"
)

// MLZ frame layout:
//
//	magic "MLZ1" (4 bytes)
//	repeated blocks:
//	    rawLen  uvarint   — decompressed size of the block (0 terminates)
//	    kind    1 byte    — 0 stored, 1 LZ token stream, 2 Huffman-coded
//	                        LZ token stream (see huffman.go)
//	    dataLen uvarint   — encoded size of the payload
//	    payload dataLen bytes
//
// Token stream (LZ4/zstd-style): a sequence of
//
//	token byte: high nibble = literal length, low nibble = match length - minMatch
//	            a nibble value of 15 is extended by additional bytes, each
//	            adding up to 255, terminated by a byte < 255
//	literal bytes
//	offset code, 1 byte (absent in the final sequence):
//	            0-2 reuse the 1st/2nd/3rd most recent distinct offset
//	            (zstd's repeat-offset codes: trace matches recur at the
//	            same distances, e.g. one loop iteration back, so most
//	            matches need no explicit offset at all)
//	            3 means a new offset follows as 3 little-endian bytes
//
// The final sequence of a block carries only literals (match nibble 0 and
// no offset bytes follow the literals when the stream ends). The repeat-
// offset history starts each block as {1, 2, 4}.
var mlzMagic = [4]byte{'M', 'L', 'Z', '1'}

const (
	// mlzBlockSize is the raw bytes per independently compressed block.
	// 4 MiB plays the role of zstd's large match window (the paper uses
	// level 22): branch traces are dominated by long-range repetition —
	// loops re-emitting identical packet runs — that a small window such
	// as gzip's 32 KiB cannot exploit (§IV, §VII-D).
	mlzBlockSize = 1 << 22
	mlzMinMatch  = 4
	mlzMaxOffset = mlzBlockSize - 1
)

// Block kinds.
const (
	blockStored  = 0
	blockLZ      = 1
	blockHuffman = 2
)

// Level selects the effort of the MLZ match search.
type Level int

// Compression levels. LevelBest plays the role of zstd's maximum level in
// the paper (§IV): it is slower to compress but decompresses just as fast.
const (
	LevelFast Level = iota // greedy, single hash probe
	LevelBest              // hash chains with lazy matching
)

// mlzWriter implements io.WriteCloser, buffering input into blocks.
type mlzWriter struct {
	w       io.Writer
	level   Level
	buf     []byte
	enc     mlzEncoder
	huffBuf []byte
	wrote   bool
	err     error
}

// NewMLZWriter returns a WriteCloser that MLZ-compresses everything written
// to it into w. Close flushes the final block and the end-of-frame marker
// but does not close w.
func NewMLZWriter(w io.Writer, level Level) io.WriteCloser {
	// The block buffer grows on demand so small streams stay cheap.
	return &mlzWriter{w: w, level: level, buf: make([]byte, 0, 1<<16)}
}

func (z *mlzWriter) Write(p []byte) (int, error) {
	if z.err != nil {
		return 0, z.err
	}
	n := len(p)
	for len(p) > 0 {
		space := mlzBlockSize - len(z.buf)
		take := len(p)
		if take > space {
			take = space
		}
		z.buf = append(z.buf, p[:take]...)
		p = p[take:]
		if len(z.buf) == mlzBlockSize {
			if z.err = z.flushBlock(); z.err != nil {
				return n - len(p), z.err
			}
		}
	}
	return n, nil
}

func (z *mlzWriter) flushBlock() error {
	if !z.wrote {
		if _, err := z.w.Write(mlzMagic[:]); err != nil {
			return err
		}
		z.wrote = true
	}
	if len(z.buf) == 0 {
		return nil
	}
	payload := z.enc.encode(z.buf, z.level)
	kind := byte(blockLZ)
	if huff, ok := huffEncode(payload, z.huffBuf); ok {
		z.huffBuf = huff
		payload = huff
		kind = blockHuffman
	}
	if len(payload) >= len(z.buf) {
		payload = z.buf
		kind = blockStored
	}
	var hdr [2*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(z.buf)))
	hdr[n] = kind
	n++
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	if _, err := z.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := z.w.Write(payload); err != nil {
		return err
	}
	z.buf = z.buf[:0]
	return nil
}

// Close flushes buffered data and writes the end-of-frame marker.
func (z *mlzWriter) Close() error {
	if z.err != nil {
		return z.err
	}
	if err := z.flushBlock(); err != nil {
		z.err = err
		return err
	}
	if !z.wrote { // empty stream still gets a valid frame
		if _, err := z.w.Write(mlzMagic[:]); err != nil {
			z.err = err
			return err
		}
		z.wrote = true
	}
	if _, err := z.w.Write([]byte{0}); err != nil { // rawLen 0 terminates
		z.err = err
		return err
	}
	z.err = errors.New("compress: writer closed")
	return nil
}

// mlzEncoder holds reusable match-finding state.
type mlzEncoder struct {
	head []int32 // hash -> most recent position
	prev []int32 // position -> previous position with same hash
	out  []byte
	reps [3]int // repeat-offset history, most recent first
}

const (
	mlzHashBits = 17
	mlzHashLen  = 1 << mlzHashBits
)

func mlzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - mlzHashBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// encode compresses src into the encoder's reusable buffer and returns it.
// The returned slice is valid until the next call.
func (e *mlzEncoder) encode(src []byte, level Level) []byte {
	if e.head == nil {
		e.head = make([]int32, mlzHashLen)
	}
	if cap(e.prev) < len(src) {
		e.prev = make([]int32, len(src))
	}
	for i := range e.head {
		e.head[i] = -1
	}
	e.out = e.out[:0]
	e.reps = initialReps
	chainDepth := 1
	lazy := false
	if level == LevelBest {
		chainDepth = 128
		lazy = true
	}

	litStart := 0
	i := 0
	for i+mlzMinMatch <= len(src) {
		off, length := e.bestMatch(src, i, chainDepth)
		if length >= mlzMinMatch && lazy && i+1+mlzMinMatch <= len(src) {
			// Lazy matching: if starting one byte later yields a strictly
			// longer match, emit this byte as a literal instead.
			e.insert(src, i)
			off2, length2 := e.bestMatch(src, i+1, chainDepth)
			if length2 > length+1 {
				i++
				off, length = off2, length2
			} else {
				e.emit(src[litStart:i], off, length)
				for j := i + 1; j < i+length && j+mlzMinMatch <= len(src); j++ {
					e.insert(src, j)
				}
				i += length
				litStart = i
				continue
			}
		}
		if length >= mlzMinMatch {
			e.emit(src[litStart:i], off, length)
			for j := i; j < i+length && j+mlzMinMatch <= len(src); j++ {
				e.insert(src, j)
			}
			i += length
			litStart = i
		} else {
			e.insert(src, i)
			i++
		}
	}
	// Final literal-only sequence.
	e.emitFinal(src[litStart:])
	return e.out
}

// insert records position i in the match-finder structures.
func (e *mlzEncoder) insert(src []byte, i int) {
	h := mlzHash(load32(src, i))
	e.prev[i] = e.head[h]
	e.head[h] = int32(i)
}

// bestMatch picks between the hash-chain match and a match at one of the
// repeat offsets. A repeat-offset match within two bytes of the best chain
// match wins: its encoding costs one byte instead of four, the preference
// zstd's match finder applies.
func (e *mlzEncoder) bestMatch(src []byte, i, depth int) (offset, length int) {
	off, l := e.findMatch(src, i, depth)
	repOff, repLen := 0, 0
	for _, r := range e.reps {
		if r <= 0 || r > i {
			continue
		}
		if load32(src, i-r) != load32(src, i) {
			continue
		}
		rl := mlzMinMatch
		for i+rl < len(src) && src[i-r+rl] == src[i+rl] {
			rl++
		}
		if rl > repLen {
			repOff, repLen = r, rl
		}
	}
	if repLen >= mlzMinMatch && repLen+2 >= l {
		return repOff, repLen
	}
	return off, l
}

// findMatch searches for the longest match for the data at position i,
// probing up to depth chain entries. It returns the offset (i - matchPos)
// and length, or (0,0) when no acceptable match exists.
func (e *mlzEncoder) findMatch(src []byte, i, depth int) (offset, length int) {
	h := mlzHash(load32(src, i))
	cand := e.head[h]
	limit := len(src)
	for d := 0; d < depth && cand >= 0; d++ {
		c := int(cand)
		if i-c > mlzMaxOffset {
			break
		}
		if load32(src, c) == load32(src, i) {
			l := mlzMinMatch
			for i+l < limit && src[c+l] == src[i+l] {
				l++
			}
			if l > length {
				length, offset = l, i-c
			}
		}
		cand = e.prev[c]
	}
	if length < mlzMinMatch {
		return 0, 0
	}
	return offset, length
}

// initialReps seeds the repeat-offset history of every block.
var initialReps = [3]int{1, 2, 4}

// emit appends one sequence in the order the decoder consumes it: token,
// extended literal length, literals, extended match length, offset code
// (plus the offset bytes when it is not a repeat).
func (e *mlzEncoder) emit(lits []byte, offset, length int) {
	matchExtra := length - mlzMinMatch
	e.writeToken(len(lits), matchExtra)
	e.out = append(e.out, lits...)
	if matchExtra >= 15 {
		e.writeExtra(matchExtra - 15)
	}
	switch offset {
	case e.reps[0]:
		e.out = append(e.out, 0)
	case e.reps[1]:
		e.out = append(e.out, 1)
		e.reps[0], e.reps[1] = e.reps[1], e.reps[0]
	case e.reps[2]:
		e.out = append(e.out, 2)
		e.reps[0], e.reps[1], e.reps[2] = e.reps[2], e.reps[0], e.reps[1]
	default:
		e.out = append(e.out, 3, byte(offset), byte(offset>>8), byte(offset>>16))
		e.reps[0], e.reps[1], e.reps[2] = offset, e.reps[0], e.reps[1]
	}
}

// emitFinal appends the trailing literal-only sequence: no match extras and
// no offset bytes; the block payload ends right after the literals.
func (e *mlzEncoder) emitFinal(lits []byte) {
	if len(lits) == 0 {
		return
	}
	e.writeToken(len(lits), 0)
	e.out = append(e.out, lits...)
}

// writeToken appends the token byte and, when the literal length overflows
// its nibble, the extension bytes that immediately follow the token.
func (e *mlzEncoder) writeToken(litLen, matchExtra int) {
	litNib, matchNib := litLen, matchExtra
	if litNib > 15 {
		litNib = 15
	}
	if matchNib > 15 {
		matchNib = 15
	}
	e.out = append(e.out, byte(litNib<<4|matchNib))
	if litNib == 15 {
		e.writeExtra(litLen - 15)
	}
}

func (e *mlzEncoder) writeExtra(v int) {
	for v >= 255 {
		e.out = append(e.out, 255)
		v -= 255
	}
	e.out = append(e.out, byte(v))
}

// mlzReader implements io.Reader over an MLZ frame.
type mlzReader struct {
	r     io.ByteReader
	src   io.Reader
	block []byte
	pos   int
	raw   []byte
	huff  huffDecoder
	done  bool
	err   error
}

// NewMLZReader returns a Reader that decompresses an MLZ frame from r. It
// assumes the 4-byte magic has NOT been consumed yet.
func NewMLZReader(r io.Reader) (io.Reader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("compress: reading MLZ magic: %w", faults.ErrTruncated)
		}
		return nil, fmt.Errorf("compress: reading MLZ magic: %w", err)
	}
	if magic != mlzMagic {
		return nil, fmt.Errorf("compress: not an MLZ stream: %w", faults.ErrCorrupt)
	}
	return newMLZBody(r), nil
}

// newMLZBody wraps a stream positioned just after the magic bytes.
func newMLZBody(r io.Reader) io.Reader {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if ok {
		return &mlzReader{r: br, src: br}
	}
	bb := &byteReader{r: r}
	return &mlzReader{r: bb, src: bb}
}

// byteReader adds a trivial ReadByte to an io.Reader.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

func (z *mlzReader) Read(p []byte) (int, error) {
	for {
		if z.err != nil {
			return 0, z.err
		}
		if z.pos < len(z.block) {
			n := copy(p, z.block[z.pos:])
			z.pos += n
			return n, nil
		}
		if z.done {
			return 0, io.EOF
		}
		if err := z.nextBlock(); err != nil {
			z.err = err
			return 0, err
		}
	}
}

func (z *mlzReader) nextBlock() error {
	rawLen, err := binary.ReadUvarint(z.r)
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("compress: MLZ frame ends without terminator: %w", faults.ErrTruncated)
		}
		return fmt.Errorf("compress: MLZ block header: %w", classifyVarintErr(err))
	}
	if rawLen == 0 {
		z.done = true
		return io.EOF
	}
	if rawLen > mlzBlockSize {
		return fmt.Errorf("compress: MLZ block raw length %d exceeds %d: %w", rawLen, mlzBlockSize, faults.ErrLimit)
	}
	kind, err := z.r.ReadByte()
	if err != nil {
		return fmt.Errorf("compress: MLZ block kind: %w", classifyVarintErr(err))
	}
	dataLen, err := binary.ReadUvarint(z.r)
	if err != nil {
		return fmt.Errorf("compress: MLZ block header: %w", classifyVarintErr(err))
	}
	if dataLen > mlzBlockSize {
		return fmt.Errorf("compress: MLZ block data length %d exceeds %d: %w", dataLen, mlzBlockSize, faults.ErrLimit)
	}
	if cap(z.raw) < int(dataLen) {
		z.raw = make([]byte, dataLen)
	}
	payload := z.raw[:dataLen]
	if _, err := io.ReadFull(z.src, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("compress: MLZ block payload: %w", faults.ErrTruncated)
		}
		return fmt.Errorf("compress: MLZ block payload: %w", err)
	}
	if cap(z.block) < int(rawLen) {
		z.block = make([]byte, rawLen)
	}
	switch kind {
	case blockStored:
		if dataLen != rawLen {
			return errMLZCorrupt
		}
		z.block = z.block[:rawLen]
		copy(z.block, payload)
	case blockHuffman:
		lz, err := z.huff.decode(payload)
		if err != nil {
			return err
		}
		z.block, err = mlzDecodeBlock(z.block[:0], lz, int(rawLen))
		if err != nil {
			return err
		}
	case blockLZ:
		z.block, err = mlzDecodeBlock(z.block[:0], payload, int(rawLen))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("compress: unknown MLZ block kind %d: %w", kind, faults.ErrCorrupt)
	}
	z.pos = 0
	return nil
}

var errMLZCorrupt = fmt.Errorf("compress: corrupt MLZ block: %w", faults.ErrCorrupt)

// classifyVarintErr maps an error from inside a block header into the
// taxonomy: end of input is truncation, a varint overflow is corruption,
// and real I/O errors pass through unchanged.
func classifyVarintErr(err error) error {
	switch {
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("%w: %w", err, faults.ErrTruncated)
	case strings.Contains(err.Error(), "overflow"):
		return fmt.Errorf("%w: %w", err, faults.ErrCorrupt)
	}
	return err
}

// mlzDecodeBlock decompresses one token-stream payload into dst, which must
// have capacity for rawLen bytes. It returns dst grown to rawLen.
func mlzDecodeBlock(dst, payload []byte, rawLen int) ([]byte, error) {
	p := 0
	reps := initialReps
	for p < len(payload) {
		token := payload[p]
		p++
		litLen := int(token >> 4)
		matchExtra := int(token & 0xf)
		if litLen == 15 {
			n, np, err := mlzReadExtra(payload, p)
			if err != nil {
				return nil, err
			}
			litLen, p = 15+n, np
		}
		if litLen > 0 {
			if p+litLen > len(payload) || len(dst)+litLen > rawLen {
				return nil, errMLZCorrupt
			}
			dst = append(dst, payload[p:p+litLen]...)
			p += litLen
		}
		if p == len(payload) {
			// Final literal-only sequence.
			break
		}
		if matchExtra == 15 {
			n, np, err := mlzReadExtra(payload, p)
			if err != nil {
				return nil, err
			}
			matchExtra, p = 15+n, np
		}
		if p >= len(payload) {
			return nil, errMLZCorrupt
		}
		var offset int
		switch code := payload[p]; code {
		case 0:
			p++
			offset = reps[0]
		case 1:
			p++
			offset = reps[1]
			reps[0], reps[1] = reps[1], reps[0]
		case 2:
			p++
			offset = reps[2]
			reps[0], reps[1], reps[2] = reps[2], reps[0], reps[1]
		case 3:
			if p+4 > len(payload) {
				return nil, errMLZCorrupt
			}
			offset = int(payload[p+1]) | int(payload[p+2])<<8 | int(payload[p+3])<<16
			p += 4
			reps[0], reps[1], reps[2] = offset, reps[0], reps[1]
		default:
			return nil, errMLZCorrupt
		}
		matchLen := matchExtra + mlzMinMatch
		if offset == 0 || offset > len(dst) || len(dst)+matchLen > rawLen {
			return nil, errMLZCorrupt
		}
		start := len(dst) - offset
		if offset >= matchLen {
			// Non-overlapping: one bulk copy.
			dst = append(dst, dst[start:start+matchLen]...)
		} else {
			// Overlapping match (offset < matchLen): the run-length case.
			// Each copy may source bytes written by the previous one, so
			// the copied region doubles per pass — O(log(matchLen/offset))
			// copies instead of one append per byte.
			d := len(dst)
			if cap(dst) < d+matchLen {
				dst = append(dst, make([]byte, matchLen)...)
			} else {
				dst = dst[:d+matchLen]
			}
			for i := 0; i < matchLen; {
				i += copy(dst[d+i:d+matchLen], dst[start+i:d+i])
			}
		}
	}
	if len(dst) != rawLen {
		return nil, errMLZCorrupt
	}
	return dst, nil
}

func mlzReadExtra(payload []byte, p int) (n, newP int, err error) {
	for {
		if p >= len(payload) {
			return 0, 0, errMLZCorrupt
		}
		b := payload[p]
		p++
		n += int(b)
		if b < 255 {
			return n, p, nil
		}
	}
}
