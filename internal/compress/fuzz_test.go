package compress

import (
	"bytes"
	"io"
	"testing"
)

// FuzzMLZRoundTrip feeds arbitrary payloads through the MLZ compressor at
// both levels and requires exact reconstruction, and feeds arbitrary bytes
// to the decoder, which must reject or decode them without panicking —
// the dynamic counterpart to mbpvet's static bit-width checks on the
// codec paths.
func FuzzMLZRoundTrip(f *testing.F) {
	f.Add([]byte(""), true)
	f.Add([]byte("abcabcabcabcabcabc"), false)
	f.Add(bytes.Repeat([]byte{0x00, 0x01, 0x02, 0x03}, 4096), true)
	f.Add([]byte("MLZ1\x00"), false) // magic followed by a bad frame
	f.Add(bytes.Repeat([]byte("branch trace packets repeat at fixed offsets "), 64), true)

	f.Fuzz(func(t *testing.T, data []byte, best bool) {
		level := LevelFast
		if best {
			level = LevelBest
		}

		var comp bytes.Buffer
		w := NewMLZWriter(&comp, level)
		if _, err := w.Write(data); err != nil {
			t.Fatalf("compress write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("compress close: %v", err)
		}
		r, err := NewReader(bytes.NewReader(comp.Bytes()))
		if err != nil {
			t.Fatalf("opening compressed stream: %v", err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: %d bytes in, %d bytes out", len(data), len(got))
		}

		// The decoder must survive the raw fuzz payload itself: either a
		// clean error or a successful decode, never a panic.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			io.Copy(io.Discard, r) //nolint:errcheck // any outcome but a panic is acceptable here
		}
	})
}
