package compress

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mbplib/internal/faults"
)

// The entropy stage of MLZ: an order-0 canonical Huffman coder applied to
// the LZ token payload of each block, which is what moves MLZ from the LZ4
// ratio class to the DEFLATE/zstd class. Two implementation techniques are
// borrowed from zstd's literal coder: a table-driven decoder that resolves
// up to two symbols per lookup, and a payload split into four independently
// encoded streams decoded in interleave — four shift-chains in flight keep
// the CPU pipeline busy where a single stream would serialise on the bit
// cursor. Together they are what keeps MLZ decompression well ahead of
// DEFLATE, the property the suite's trace distribution relies on (§IV).
//
// Encoded layout:
//
//	128 bytes  code lengths, 4 bits per symbol (0 = unused, max 12)
//	uvarint    number of encoded symbols n; streams hold k, k, k, n-3k
//	           symbols where k = ceil(n/4)
//	uvarint ×3 byte lengths of the first three streams
//	bytes      the four bitstreams, back to back (LSB-first codes)
const huffMaxLen = 12

// huffNumStreams is fixed by the format.
const huffNumStreams = 4

// huffEncode Huffman-codes payload. It returns nil and false when coding
// would not shrink the payload (e.g. near-uniform data).
func huffEncode(payload []byte, out []byte) ([]byte, bool) {
	if len(payload) == 0 {
		return nil, false
	}
	var freq [256]uint64
	for _, b := range payload {
		freq[b]++
	}
	lengths, ok := buildLengths(&freq)
	if !ok {
		return nil, false
	}
	codes := canonicalCodes(lengths)

	// Estimate the encoded size before committing.
	bits := uint64(0)
	for s, f := range freq {
		bits += f * uint64(lengths[s])
	}
	estimate := 128 + 16 + int(bits+7)/8
	if estimate >= len(payload) {
		return nil, false
	}

	out = out[:0]
	for i := 0; i < 256; i += 2 {
		out = append(out, byte(lengths[i])|byte(lengths[i+1])<<4)
	}
	out = binary.AppendUvarint(out, uint64(len(payload)))

	k := (len(payload) + huffNumStreams - 1) / huffNumStreams
	var streams [huffNumStreams][]byte
	scratch := make([]byte, 0, len(payload)/3+16)
	for s := 0; s < huffNumStreams; s++ {
		lo := s * k
		hi := lo + k
		if lo > len(payload) {
			lo = len(payload)
		}
		if hi > len(payload) {
			hi = len(payload)
		}
		scratch = encodeStream(payload[lo:hi], &lengths, &codes, scratch[:0])
		streams[s] = append([]byte(nil), scratch...)
	}
	for s := 0; s < huffNumStreams-1; s++ {
		out = binary.AppendUvarint(out, uint64(len(streams[s])))
	}
	for s := 0; s < huffNumStreams; s++ {
		out = append(out, streams[s]...)
	}
	return out, true
}

// encodeStream appends the LSB-first bitstream of symbols to out.
func encodeStream(symbols []byte, lengths *[256]uint8, codes *[256]uint16, out []byte) []byte {
	var acc uint64
	var n uint
	for _, b := range symbols {
		acc |= uint64(codes[b]) << n
		n += uint(lengths[b])
		for n >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			n -= 8
		}
	}
	if n > 0 {
		out = append(out, byte(acc))
	}
	return out
}

// buildLengths computes code lengths for the frequency table, limited to
// huffMaxLen by frequency flattening.
func buildLengths(freq *[256]uint64) ([256]uint8, bool) {
	var lengths [256]uint8
	f := *freq
	for try := 0; try < 20; try++ {
		lengths = huffmanLengths(&f)
		max := uint8(0)
		used := 0
		for s := range lengths {
			if lengths[s] > max {
				max = lengths[s]
			}
			if lengths[s] > 0 {
				used++
			}
		}
		if used == 1 {
			// A single distinct byte: give it a 1-bit code.
			for s := range lengths {
				if lengths[s] > 0 || f[s] > 0 {
					lengths[s] = 1
				}
			}
			return lengths, true
		}
		if max <= huffMaxLen {
			return lengths, true
		}
		// Flatten the distribution and retry.
		for s := range f {
			if f[s] > 0 {
				f[s] = f[s]/2 + 1
			}
		}
	}
	return lengths, false
}

// huffmanLengths builds unrestricted Huffman code lengths with a simple
// sorted-merge construction (256 symbols, so efficiency is irrelevant).
func huffmanLengths(freq *[256]uint64) [256]uint8 {
	type node struct {
		weight      uint64
		symbol      int // -1 for internal
		left, right *node
	}
	var leaves []*node
	for s, f := range freq {
		if f > 0 {
			leaves = append(leaves, &node{weight: f, symbol: s})
		}
	}
	var lengths [256]uint8
	if len(leaves) == 0 {
		return lengths
	}
	if len(leaves) == 1 {
		lengths[leaves[0].symbol] = 1
		return lengths
	}
	nodes := append([]*node(nil), leaves...)
	for len(nodes) > 1 {
		sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].weight < nodes[j].weight })
		merged := &node{weight: nodes[0].weight + nodes[1].weight, symbol: -1, left: nodes[0], right: nodes[1]}
		nodes = append([]*node{merged}, nodes[2:]...)
	}
	var walk func(n *node, depth uint8)
	walk = func(n *node, depth uint8) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(nodes[0], 0)
	return lengths
}

// canonicalCodes assigns canonical codes (bit-reversed for LSB-first I/O).
func canonicalCodes(lengths [256]uint8) [256]uint16 {
	type sym struct {
		s int
		l uint8
	}
	var syms []sym
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sym{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].s < syms[j].s
	})
	var codes [256]uint16
	code := uint16(0)
	prevLen := uint8(0)
	for _, sy := range syms {
		code <<= sy.l - prevLen
		prevLen = sy.l
		codes[sy.s] = reverseBits(code, sy.l)
		code++
	}
	return codes
}

func reverseBits(v uint16, n uint8) uint16 {
	var r uint16
	for i := uint8(0); i < n; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

var errHuffCorrupt = fmt.Errorf("compress: corrupt Huffman block: %w", faults.ErrCorrupt)

// huffDecoder holds reusable decode tables.
type huffDecoder struct {
	// table maps huffMaxLen low bits of the stream to (symbol<<4 | length).
	table []uint16
	// pair maps huffMaxLen low bits to up to two decoded symbols:
	// sym1 | sym2<<8 | consumedBits<<16 | numSyms<<24.
	pair []uint32
	out  []byte
}

// cursor is the decode state of one bitstream.
type cursor struct {
	stream []byte
	pos    int
	acc    uint64
	bits   uint
	out    []byte
	i      int
}

// refill tops the accumulator up to 56+ bits; returns false near the end of
// the stream, where the scalar tail path takes over.
func (c *cursor) refill() bool {
	if c.pos+8 > len(c.stream) {
		return false
	}
	if c.bits < 4*huffMaxLen {
		// Whole bytes only: the partially consumed byte is re-read
		// (idempotently) by the next refill.
		c.acc |= binary.LittleEndian.Uint64(c.stream[c.pos:]) << c.bits
		c.pos += int(63-c.bits) >> 3
		c.bits |= 56
	}
	return true
}

// decode reconstructs the LZ payload from a Huffman-coded block body.
func (d *huffDecoder) decode(data []byte) ([]byte, error) {
	if len(data) < 128+1 {
		return nil, errHuffCorrupt
	}
	var lengths [256]uint8
	for i := 0; i < 128; i++ {
		lengths[2*i] = data[i] & 0xf
		lengths[2*i+1] = data[i] >> 4
	}
	rest := data[128:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > mlzBlockSize*2 {
		return nil, errHuffCorrupt
	}
	rest = rest[n:]
	var streamLens [huffNumStreams - 1]int
	for s := range streamLens {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > uint64(len(rest)) {
			return nil, errHuffCorrupt
		}
		streamLens[s] = int(v)
		rest = rest[n:]
	}

	if err := d.buildTables(&lengths); err != nil {
		return nil, err
	}
	if cap(d.out) < int(count) {
		d.out = make([]byte, count)
	}
	out := d.out[:count]

	// Slice the four streams and their output regions.
	k := (int(count) + huffNumStreams - 1) / huffNumStreams
	var cs [huffNumStreams]cursor
	for s := 0; s < huffNumStreams; s++ {
		var sl int
		if s < huffNumStreams-1 {
			sl = streamLens[s]
		} else {
			sl = len(rest)
		}
		if sl > len(rest) {
			return nil, errHuffCorrupt
		}
		cs[s].stream, rest = rest[:sl], rest[sl:]
		lo := s * k
		hi := lo + k
		if lo > int(count) {
			lo = int(count)
		}
		if hi > int(count) {
			hi = int(count)
		}
		cs[s].out = out[lo:hi]
	}

	// Interleaved fast path: one pair-lookup per stream per round keeps
	// four independent shift-chains in flight.
	pair := d.pair
	for {
		ok := true
		for s := range cs {
			if cs[s].i+2 > len(cs[s].out) || !cs[s].refill() {
				ok = false
			}
		}
		if !ok {
			break
		}
		for r := 0; r < 2; r++ {
			for s := range cs {
				c := &cs[s]
				if c.i+2 > len(c.out) {
					continue
				}
				e := pair[c.acc&(1<<huffMaxLen-1)]
				if e == 0 {
					return nil, errHuffCorrupt
				}
				// Branchless emit: the second byte is speculative and is
				// overwritten when the entry held a single symbol.
				c.out[c.i] = byte(e)
				c.out[c.i+1] = byte(e >> 8)
				c.i += int(e >> 24)
				consumed := uint(e>>16) & 0xff
				c.acc >>= consumed
				c.bits -= consumed
			}
		}
	}
	// Scalar tails.
	for s := range cs {
		if err := d.finishStream(&cs[s]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// finishStream decodes the remaining symbols of one stream one at a time.
func (d *huffDecoder) finishStream(c *cursor) error {
	for ; c.i < len(c.out); c.i++ {
		for c.bits < huffMaxLen && c.pos < len(c.stream) {
			c.acc |= uint64(c.stream[c.pos]) << c.bits
			c.bits += 8
			c.pos++
		}
		e := d.table[c.acc&(1<<huffMaxLen-1)]
		l := uint(e & 0xf)
		if l == 0 || l > c.bits {
			return errHuffCorrupt
		}
		c.out[c.i] = byte(e >> 4)
		c.acc >>= l
		c.bits -= l
	}
	return nil
}

// buildTables fills the single-symbol and pair decode tables.
func (d *huffDecoder) buildTables(lengths *[256]uint8) error {
	codes := canonicalCodes(*lengths)
	if d.table == nil {
		d.table = make([]uint16, 1<<huffMaxLen)
		d.pair = make([]uint32, 1<<huffMaxLen)
	}
	for i := range d.table {
		d.table[i] = 0
	}
	for s := 0; s < 256; s++ {
		l := lengths[s]
		if l == 0 {
			continue
		}
		if l > huffMaxLen {
			return errHuffCorrupt
		}
		entry := uint16(s)<<4 | uint16(l)
		step := 1 << l
		for i := int(codes[s]); i < len(d.table); i += step {
			if d.table[i] != 0 {
				return errHuffCorrupt
			}
			d.table[i] = entry
		}
	}
	// Derive the pair table: for every pattern, decode one symbol and, when
	// the next code fits entirely in the remaining known bits, a second.
	for p := range d.pair {
		e1 := d.table[p]
		l1 := uint32(e1 & 0xf)
		if l1 == 0 {
			d.pair[p] = 0
			continue
		}
		entry := uint32(e1>>4) | l1<<16 | 1<<24
		if rest := uint(huffMaxLen) - uint(l1); rest > 0 {
			e2 := d.table[(uint(p)>>l1)&(1<<huffMaxLen-1)]
			if l2 := uint(e2 & 0xf); l2 > 0 && l2 <= rest {
				entry = uint32(e1>>4) | uint32(e2>>4)<<8 | (l1+uint32(l2))<<16 | 2<<24
			}
		}
		d.pair[p] = entry
	}
	return nil
}
