package compress

// MLZS is the seekable chunked container over the MLZ codec, in the spirit
// of s2's Index and pgzip: the raw stream is cut into independent chunks,
// each compressed on its own (MLZ token stream, Huffman-coded token stream,
// or stored) and framed with its decompressed size and a CRC-32C of the
// payload, so chunks can be compressed and decompressed in parallel and
// random-accessed without touching the rest of the file.
//
// Container layout:
//
//	header:
//	    magic "MLZS" (4 bytes)
//	    version 1 byte (currently 1)
//	    chunkSize uvarint — the writer's raw-bytes-per-chunk target
//	    align     uvarint — when non-zero, every chunk boundary lies at a
//	                        raw offset ≡ alignOff (mod align); 0 = unaligned
//	    alignOff  uvarint
//	repeated chunk frames:
//	    tag     1 byte    — 0x01 (chunk follows); 0x00 terminates the chunks
//	    rawLen  uvarint   — decompressed size of the chunk
//	    kind    1 byte    — 0 stored, 1 LZ, 2 Huffman (the MLZ block kinds)
//	    dataLen uvarint   — encoded payload size
//	    crc     4 bytes   — CRC-32C (Castagnoli) of the payload, little-endian
//	    payload dataLen bytes
//	index trailer (after the 0x00 tag):
//	    count uvarint, then per chunk:
//	        offDelta uvarint — frame offset minus the previous frame offset
//	                           (the first delta is the absolute header length)
//	        rawLen   uvarint
//	footer (fixed 12 bytes, located by seeking to end-of-file):
//	    trailerLen u32 LE | trailer CRC-32C u32 LE | end magic "SZLM"
//
// A sequential reader never needs the trailer: frames are self-delimiting
// and the 0x00 tag ends the data, so the container streams through
// NewReader exactly like the legacy MLZ format. Seekable consumers locate
// the trailer through the footer; a damaged trailer yields a typed
// faults.ErrCorrupt (never a wrong chunk table — it is CRC-protected), and
// callers fall back to a sequential scan (ScanMLZSIndex) or plain
// streaming.
//
// The alignment fields exist for the trace cache: an SBBT stream written
// with align=16, alignOff=24 has every chunk boundary on a packet boundary
// (chunk 0 additionally holds the 24-byte header), so each chunk decodes to
// a whole number of events independently of its neighbours.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"mbplib/internal/faults"
)

// mlzsMagic opens the container; mlzsEndMagic closes the footer (reversed,
// so neither can be mistaken for the other when sniffing either end).
var (
	mlzsMagic    = [4]byte{'M', 'L', 'Z', 'S'}
	mlzsEndMagic = [4]byte{'S', 'Z', 'L', 'M'}
)

const (
	mlzsVersion = 1
	// DefaultMLZSChunkSize is the raw bytes per chunk when MLZSOptions does
	// not say otherwise: 1 MiB keeps per-chunk compression ratios within a
	// few percent of the 4 MiB stream-MLZ blocks while giving a 4-worker
	// decode enough chunks to stay busy on even short traces.
	DefaultMLZSChunkSize = 1 << 20
	// mlzsChunkTag / mlzsEndTag frame the chunk sequence.
	mlzsChunkTag = 0x01
	mlzsEndTag   = 0x00
	// mlzsFooterSize is the fixed byte size of the end-of-file footer.
	mlzsFooterSize = 12
)

// mlzsCastagnoli is the CRC-32C table shared by chunk framing and trailer.
var mlzsCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// MLZSOptions configures an MLZS writer.
type MLZSOptions struct {
	// ChunkSize is the raw bytes per chunk; 0 means DefaultMLZSChunkSize.
	// Values are clamped to [1, the MLZ block size].
	ChunkSize int
	// Level selects the MLZ match-search effort per chunk.
	Level Level
	// Workers is the number of chunks compressed concurrently, pgzip-style.
	// <= 1 compresses inline on the Write caller. Output bytes are identical
	// at any worker count: chunks are independent and frames are written in
	// order.
	Workers int
	// Align and AlignOffset, when Align > 0, restrict chunk boundaries to
	// raw offsets ≡ AlignOffset (mod Align), so fixed-size records of the
	// inner stream never straddle a chunk. Alignment that cannot be honoured
	// (Align+AlignOffset exceeding the chunk size) is dropped.
	Align       int
	AlignOffset int
}

// normalized clamps the options to what the container can represent.
func (o MLZSOptions) normalized() MLZSOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultMLZSChunkSize
	}
	if o.ChunkSize > mlzBlockSize {
		o.ChunkSize = mlzBlockSize
	}
	if o.Align <= 0 || o.AlignOffset < 0 || o.Align+o.AlignOffset > o.ChunkSize {
		o.Align, o.AlignOffset = 0, 0
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// mlzsChunkInfo is one trailer entry while writing.
type mlzsChunkInfo struct {
	off    int64 // file offset of the chunk frame
	rawLen int64
}

// mlzsJob is one chunk travelling through the parallel compression pool.
type mlzsJob struct {
	raw     []byte
	payload []byte
	kind    byte
	done    chan struct{}
}

// mlzsWriter implements io.WriteCloser for the MLZS container.
type mlzsWriter struct {
	w     io.Writer
	opts  MLZSOptions
	buf   []byte // current chunk being filled
	cut   int    // raw length the current chunk will be cut at
	off   int64  // bytes written to w so far
	raw   int64  // raw bytes consumed so far
	index []mlzsChunkInfo
	wrote bool // header emitted
	err   error

	// Parallel-compression state (opts.Workers > 1).
	jobs    chan *mlzsJob
	pending []*mlzsJob
	free    chan []byte

	// Inline-compression state (opts.Workers <= 1).
	enc     mlzEncoder
	huffBuf []byte
}

// NewMLZSWriter returns a WriteCloser that writes the MLZS container into w.
// Close flushes the final chunk and writes the index trailer and footer but
// does not close w.
func NewMLZSWriter(w io.Writer, opts MLZSOptions) io.WriteCloser {
	z := &mlzsWriter{w: w, opts: opts.normalized()}
	if z.opts.Workers > 1 {
		z.jobs = make(chan *mlzsJob, z.opts.Workers)
		z.free = make(chan []byte, 2*z.opts.Workers)
		for i := 0; i < z.opts.Workers; i++ {
			go mlzsCompressWorker(z.jobs, z.opts.Level)
		}
	}
	return z
}

// mlzsCompressWorker compresses chunks until the jobs channel closes. Each
// worker owns its encoder state; payloads that alias encoder buffers are
// copied into the job so the worker can move on while the frame waits to be
// written in order.
func mlzsCompressWorker(jobs <-chan *mlzsJob, level Level) {
	var enc mlzEncoder
	var huffBuf []byte
	for j := range jobs {
		var out []byte
		out, j.kind, huffBuf = mlzsCompressChunk(&enc, huffBuf, j.raw, level)
		if j.kind == blockStored {
			j.payload = j.raw
		} else {
			j.payload = append(j.payload[:0], out...)
		}
		close(j.done)
	}
}

// mlzsCompressChunk compresses one chunk with the MLZ machinery, choosing
// the smallest of LZ, Huffman-coded LZ and stored. The returned payload may
// alias enc's or huffBuf's storage.
func mlzsCompressChunk(enc *mlzEncoder, huffBuf, raw []byte, level Level) (payload []byte, kind byte, newHuffBuf []byte) {
	payload = enc.encode(raw, level)
	kind = blockLZ
	if huff, ok := huffEncode(payload, huffBuf); ok {
		huffBuf = huff
		payload = huff
		kind = blockHuffman
	}
	if len(payload) >= len(raw) {
		payload = raw
		kind = blockStored
	}
	return payload, kind, huffBuf
}

// chunkTarget returns the raw length the chunk starting at z.raw should be
// cut at, honouring the alignment constraint.
func (z *mlzsWriter) chunkTarget() int {
	target := z.opts.ChunkSize
	if a := int64(z.opts.Align); a > 0 {
		next := z.raw + int64(target)
		aligned := next - (next-int64(z.opts.AlignOffset))%a
		if aligned > z.raw {
			return int(aligned - z.raw)
		}
	}
	return target
}

func (z *mlzsWriter) Write(p []byte) (int, error) {
	if z.err != nil {
		return 0, z.err
	}
	n := len(p)
	for len(p) > 0 {
		if z.cut == 0 {
			z.cut = z.chunkTarget()
		}
		take := z.cut - len(z.buf)
		if take > len(p) {
			take = len(p)
		}
		z.buf = append(z.buf, p[:take]...)
		p = p[take:]
		if len(z.buf) == z.cut {
			if z.err = z.flushChunk(); z.err != nil {
				return n - len(p), z.err
			}
			z.cut = 0
		}
	}
	return n, nil
}

// writeHeader emits the container header once.
func (z *mlzsWriter) writeHeader() error {
	if z.wrote {
		return nil
	}
	hdr := append([]byte{}, mlzsMagic[:]...)
	hdr = append(hdr, mlzsVersion)
	hdr = binary.AppendUvarint(hdr, uint64(z.opts.ChunkSize))
	hdr = binary.AppendUvarint(hdr, uint64(z.opts.Align))
	hdr = binary.AppendUvarint(hdr, uint64(z.opts.AlignOffset))
	if _, err := z.w.Write(hdr); err != nil {
		return err
	}
	z.off = int64(len(hdr))
	z.wrote = true
	return nil
}

// flushChunk hands the filled chunk to the compression pool (or compresses
// it inline) and writes any frames that are ready, preserving chunk order.
func (z *mlzsWriter) flushChunk() error {
	if err := z.writeHeader(); err != nil {
		return err
	}
	if len(z.buf) == 0 {
		return nil
	}
	z.raw += int64(len(z.buf))
	if z.jobs == nil {
		payload, kind, huffBuf := mlzsCompressChunk(&z.enc, z.huffBuf, z.buf, z.opts.Level)
		z.huffBuf = huffBuf
		if err := z.writeFrame(int64(len(z.buf)), kind, payload); err != nil {
			return err
		}
		z.buf = z.buf[:0]
		return nil
	}
	j := &mlzsJob{raw: z.buf, done: make(chan struct{})}
	select {
	case z.buf = <-z.free:
		z.buf = z.buf[:0]
	default:
		z.buf = make([]byte, 0, z.opts.ChunkSize)
	}
	z.jobs <- j
	z.pending = append(z.pending, j)
	// Bound in-flight chunks: drain the oldest once the window is full.
	if len(z.pending) >= 2*z.opts.Workers {
		return z.drainOne()
	}
	return nil
}

// drainOne waits for the oldest in-flight chunk and writes its frame.
func (z *mlzsWriter) drainOne() error {
	j := z.pending[0]
	z.pending = z.pending[1:]
	<-j.done
	err := z.writeFrame(int64(len(j.raw)), j.kind, j.payload)
	select {
	case z.free <- j.raw:
	default:
	}
	return err
}

// writeFrame emits one chunk frame and records its trailer entry.
func (z *mlzsWriter) writeFrame(rawLen int64, kind byte, payload []byte) error {
	z.index = append(z.index, mlzsChunkInfo{off: z.off, rawLen: rawLen})
	var hdr [2*binary.MaxVarintLen64 + 6]byte
	hdr[0] = mlzsChunkTag
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(rawLen))
	hdr[n] = kind
	n++
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(payload, mlzsCastagnoli))
	n += 4
	if _, err := z.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := z.w.Write(payload); err != nil {
		return err
	}
	z.off += int64(n) + int64(len(payload))
	return nil
}

// Close flushes the final chunk, drains the pool, and writes the end tag,
// index trailer and footer.
func (z *mlzsWriter) Close() error {
	if z.err != nil {
		return z.err
	}
	fail := func(err error) error {
		z.err = err
		z.stopWorkers()
		return err
	}
	if err := z.flushChunk(); err != nil {
		return fail(err)
	}
	if err := z.writeHeader(); err != nil { // empty stream still gets a frame
		return fail(err)
	}
	for len(z.pending) > 0 {
		if err := z.drainOne(); err != nil {
			return fail(err)
		}
	}
	z.stopWorkers()
	if _, err := z.w.Write([]byte{mlzsEndTag}); err != nil {
		return fail(err)
	}
	trailer := binary.AppendUvarint(nil, uint64(len(z.index)))
	prev := int64(0)
	for _, ci := range z.index {
		trailer = binary.AppendUvarint(trailer, uint64(ci.off-prev))
		prev = ci.off
		trailer = binary.AppendUvarint(trailer, uint64(ci.rawLen))
	}
	if _, err := z.w.Write(trailer); err != nil {
		return fail(err)
	}
	var footer [mlzsFooterSize]byte
	binary.LittleEndian.PutUint32(footer[0:4], uint32(len(trailer)))
	binary.LittleEndian.PutUint32(footer[4:8], crc32.Checksum(trailer, mlzsCastagnoli))
	copy(footer[8:], mlzsEndMagic[:])
	if _, err := z.w.Write(footer[:]); err != nil {
		return fail(err)
	}
	z.err = errors.New("compress: writer closed")
	return nil
}

func (z *mlzsWriter) stopWorkers() {
	if z.jobs != nil {
		// Unblock the workers; frames already handed out are drained first
		// by Close, and on error paths the payloads are simply discarded.
		for _, j := range z.pending {
			<-j.done
		}
		z.pending = nil
		close(z.jobs)
		z.jobs = nil
	}
}

// byteSource is the reader shape the frame parser needs.
type byteSource interface {
	io.Reader
	io.ByteReader
}

// mlzsHeader is the decoded container header.
type mlzsHeader struct {
	chunkSize int64
	align     int64
	alignOff  int64
	length    int64 // encoded header length in bytes
}

// countingByteSource tracks how many bytes were consumed, so header and
// frame offsets can be recovered from a pure stream scan.
type countingByteSource struct {
	r byteSource
	n int64
}

func (c *countingByteSource) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingByteSource) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// parseMLZSHeader consumes and validates the container header, including the
// 4-byte magic.
func parseMLZSHeader(r *countingByteSource) (mlzsHeader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return mlzsHeader{}, fmt.Errorf("compress: reading MLZS magic: %w", faults.ErrTruncated)
		}
		return mlzsHeader{}, fmt.Errorf("compress: reading MLZS magic: %w", err)
	}
	if magic != mlzsMagic {
		return mlzsHeader{}, fmt.Errorf("compress: not an MLZS container: %w", faults.ErrCorrupt)
	}
	version, err := r.ReadByte()
	if err != nil {
		return mlzsHeader{}, fmt.Errorf("compress: MLZS header: %w", classifyVarintErr(err))
	}
	if version != mlzsVersion {
		return mlzsHeader{}, fmt.Errorf("compress: unsupported MLZS version %d (want %d): %w", version, mlzsVersion, faults.ErrCorrupt)
	}
	var h mlzsHeader
	fields := []*int64{&h.chunkSize, &h.align, &h.alignOff}
	for _, f := range fields {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return mlzsHeader{}, fmt.Errorf("compress: MLZS header: %w", classifyVarintErr(err))
		}
		if v > mlzBlockSize {
			return mlzsHeader{}, fmt.Errorf("compress: MLZS header field %d exceeds %d: %w", v, mlzBlockSize, faults.ErrLimit)
		}
		*f = int64(v)
	}
	if h.chunkSize == 0 {
		return mlzsHeader{}, fmt.Errorf("compress: MLZS header declares zero chunk size: %w", faults.ErrCorrupt)
	}
	h.length = r.n
	return h, nil
}

// mlzsFrame is one parsed chunk frame header.
type mlzsFrame struct {
	rawLen  int64
	kind    byte
	dataLen int64
	crc     uint32
}

// readMLZSFrameHeader parses the next frame header. done reports the 0x00
// end tag; chunk is the frame's index, used only for error texts (which the
// streaming and seekable paths share, so failures read identically).
func readMLZSFrameHeader(r byteSource, chunk int) (fr mlzsFrame, done bool, err error) {
	tag, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return fr, false, fmt.Errorf("compress: MLZS container ends without terminator: %w", faults.ErrTruncated)
		}
		return fr, false, fmt.Errorf("compress: MLZS chunk %d header: %w", chunk, classifyVarintErr(err))
	}
	switch tag {
	case mlzsEndTag:
		return fr, true, nil
	case mlzsChunkTag:
	default:
		return fr, false, fmt.Errorf("compress: MLZS chunk %d: bad frame tag %#02x: %w", chunk, tag, faults.ErrCorrupt)
	}
	rawLen, err := binary.ReadUvarint(r)
	if err != nil {
		return fr, false, fmt.Errorf("compress: MLZS chunk %d header: %w", chunk, classifyVarintErr(err))
	}
	if rawLen > mlzBlockSize {
		return fr, false, fmt.Errorf("compress: MLZS chunk %d raw length %d exceeds %d: %w", chunk, rawLen, mlzBlockSize, faults.ErrLimit)
	}
	kind, err := r.ReadByte()
	if err != nil {
		return fr, false, fmt.Errorf("compress: MLZS chunk %d header: %w", chunk, classifyVarintErr(err))
	}
	dataLen, err := binary.ReadUvarint(r)
	if err != nil {
		return fr, false, fmt.Errorf("compress: MLZS chunk %d header: %w", chunk, classifyVarintErr(err))
	}
	if dataLen > mlzBlockSize {
		return fr, false, fmt.Errorf("compress: MLZS chunk %d data length %d exceeds %d: %w", chunk, dataLen, mlzBlockSize, faults.ErrLimit)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return fr, false, fmt.Errorf("compress: MLZS chunk %d header: %w", chunk, faults.ErrTruncated)
	}
	fr.rawLen, fr.kind, fr.dataLen = int64(rawLen), kind, int64(dataLen)
	fr.crc = binary.LittleEndian.Uint32(crcBuf[:])
	return fr, false, nil
}

// mlzsDecodePayload verifies the CRC and decompresses one chunk payload into
// dst (whose capacity is grown as needed), returning dst sized to rawLen.
// Error texts are shared by every decode path.
func mlzsDecodePayload(huff *huffDecoder, dst []byte, fr mlzsFrame, payload []byte, chunk int) ([]byte, error) {
	if got := crc32.Checksum(payload, mlzsCastagnoli); got != fr.crc {
		return nil, fmt.Errorf("compress: MLZS chunk %d checksum mismatch (got %#08x, want %#08x): %w", chunk, got, fr.crc, faults.ErrCorrupt)
	}
	if cap(dst) < int(fr.rawLen) {
		dst = make([]byte, 0, fr.rawLen)
	}
	switch fr.kind {
	case blockStored:
		if fr.dataLen != fr.rawLen {
			return nil, fmt.Errorf("compress: corrupt MLZS chunk %d: stored size mismatch: %w", chunk, faults.ErrCorrupt)
		}
		dst = dst[:fr.rawLen]
		copy(dst, payload)
		return dst, nil
	case blockHuffman:
		lz, err := huff.decode(payload)
		if err != nil {
			return nil, fmt.Errorf("compress: MLZS chunk %d: %w", chunk, err)
		}
		out, err := mlzDecodeBlock(dst[:0], lz, int(fr.rawLen))
		if err != nil {
			return nil, fmt.Errorf("compress: MLZS chunk %d: %w", chunk, err)
		}
		return out, nil
	case blockLZ:
		out, err := mlzDecodeBlock(dst[:0], payload, int(fr.rawLen))
		if err != nil {
			return nil, fmt.Errorf("compress: MLZS chunk %d: %w", chunk, err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("compress: unknown MLZS chunk kind %d: %w", fr.kind, faults.ErrCorrupt)
}

// mlzsSeqReader is the sequential streaming decoder: one chunk at a time on
// the Read caller, no goroutines. It is the shape compress.NewReader
// returns, so old stream-oriented consumers work unchanged.
type mlzsSeqReader struct {
	r       *countingByteSource
	chunk   int
	block   []byte
	pos     int
	payload []byte
	huff    huffDecoder
	done    bool
	err     error
}

// NewMLZSReader returns a Reader decompressing an MLZS container from r,
// decoding chunks with the given number of workers (<= 1 decodes inline on
// the Read caller). The 4-byte magic must not have been consumed yet. The
// delivered byte stream — including the position and text of any error — is
// identical at every worker count. The parallel reader implements io.Closer;
// closing it releases its goroutines early (reading to EOF or an error also
// does).
func NewMLZSReader(r io.Reader, workers int) (io.Reader, error) {
	src, ok := r.(byteSource)
	if !ok {
		src = &byteReader{r: r}
	}
	cs := &countingByteSource{r: src}
	if _, err := parseMLZSHeader(cs); err != nil {
		return nil, err
	}
	if workers <= 1 {
		return &mlzsSeqReader{r: cs}, nil
	}
	return newMLZSParallelReader(cs, workers), nil
}

func (z *mlzsSeqReader) Read(p []byte) (int, error) {
	for {
		if z.err != nil {
			return 0, z.err
		}
		if z.pos < len(z.block) {
			n := copy(p, z.block[z.pos:])
			z.pos += n
			return n, nil
		}
		if z.done {
			return 0, io.EOF
		}
		if err := z.nextChunk(); err != nil {
			z.err = err
			return 0, err
		}
	}
}

func (z *mlzsSeqReader) nextChunk() error {
	fr, done, err := readMLZSFrameHeader(z.r, z.chunk)
	if err != nil {
		return err
	}
	if done {
		z.done = true
		return io.EOF
	}
	if cap(z.payload) < int(fr.dataLen) {
		z.payload = make([]byte, fr.dataLen)
	}
	payload := z.payload[:fr.dataLen]
	if _, err := io.ReadFull(z.r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("compress: MLZS chunk %d payload: %w", z.chunk, faults.ErrTruncated)
		}
		return fmt.Errorf("compress: MLZS chunk %d payload: %w", z.chunk, err)
	}
	block, err := mlzsDecodePayload(&z.huff, z.block, fr, payload, z.chunk)
	if err != nil {
		return err
	}
	z.block, z.pos = block, 0
	z.chunk++
	return nil
}

// mlzsDecJob is one chunk travelling through the parallel decode pool.
type mlzsDecJob struct {
	chunk   int
	fr      mlzsFrame
	payload []byte
	block   []byte
	err     error
	done    chan struct{}
}

// mlzsParallelReader decodes chunks on a worker pool while delivering bytes
// strictly in chunk order: a demux goroutine parses frames and reads
// payloads sequentially, workers CRC-check and decompress concurrently, and
// Read consumes the jobs in submission order — so output bytes, error
// position and error text are identical to the sequential reader.
type mlzsParallelReader struct {
	order chan *mlzsDecJob
	quit  chan struct{}
	free  chan *mlzsDecJob
	cur   *mlzsDecJob
	pos   int
	err   error
}

func newMLZSParallelReader(cs *countingByteSource, workers int) *mlzsParallelReader {
	z := &mlzsParallelReader{
		order: make(chan *mlzsDecJob, 2*workers+2),
		quit:  make(chan struct{}),
		free:  make(chan *mlzsDecJob, 2*workers+2),
	}
	jobs := make(chan *mlzsDecJob, workers)
	for i := 0; i < workers; i++ {
		go func() {
			var huff huffDecoder
			for j := range jobs {
				if j.err == nil {
					j.block, j.err = mlzsDecodePayload(&huff, j.block, j.fr, j.payload, j.chunk)
				}
				close(j.done)
			}
		}()
	}
	go z.demux(cs, jobs)
	return z
}

// demux parses frames in order and feeds the worker pool. A parse error (or
// the end tag) is delivered as a final sentinel job so it surfaces after
// every preceding chunk's bytes, exactly where the sequential reader would
// report it.
func (z *mlzsParallelReader) demux(cs *countingByteSource, jobs chan<- *mlzsDecJob) {
	defer close(jobs)
	for chunk := 0; ; chunk++ {
		j := z.newJob(chunk)
		fr, done, err := readMLZSFrameHeader(cs, chunk)
		if err == nil && !done {
			j.fr = fr
			if cap(j.payload) < int(fr.dataLen) {
				j.payload = make([]byte, fr.dataLen)
			}
			j.payload = j.payload[:fr.dataLen]
			if _, rerr := io.ReadFull(cs, j.payload); rerr != nil {
				if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
					rerr = fmt.Errorf("compress: MLZS chunk %d payload: %w", chunk, faults.ErrTruncated)
				} else {
					rerr = fmt.Errorf("compress: MLZS chunk %d payload: %w", chunk, rerr)
				}
				err = rerr
			}
		}
		terminal := done || err != nil
		if terminal {
			j.err = err // nil on the clean end tag: Read maps it to io.EOF
			if err == nil {
				j.err = io.EOF
			}
			close(j.done) // sentinel skips the pool
		} else {
			select {
			case jobs <- j:
			case <-z.quit:
				return
			}
		}
		select {
		case z.order <- j:
		case <-z.quit:
			return
		}
		if terminal {
			return
		}
	}
}

// newJob recycles a delivered job or allocates a fresh one.
func (z *mlzsParallelReader) newJob(chunk int) *mlzsDecJob {
	select {
	case j := <-z.free:
		j.chunk, j.err = chunk, nil
		j.done = make(chan struct{})
		return j
	default:
		return &mlzsDecJob{chunk: chunk, done: make(chan struct{})}
	}
}

func (z *mlzsParallelReader) Read(p []byte) (int, error) {
	for {
		if z.err != nil {
			return 0, z.err
		}
		if z.cur != nil && z.pos < len(z.cur.block) {
			n := copy(p, z.cur.block[z.pos:])
			z.pos += n
			return n, nil
		}
		if z.cur != nil {
			select {
			case z.free <- z.cur:
			default:
			}
			z.cur = nil
		}
		j, ok := <-z.order
		if !ok {
			z.err = io.EOF
			return 0, z.err
		}
		<-j.done
		if j.err != nil {
			z.err = j.err
			return 0, z.err
		}
		z.cur, z.pos = j, 0
	}
}

// Close tears the pipeline down early; Read afterwards reports the sticky
// error (or EOF). Reading to the end of the stream already releases the
// goroutines, so Close is only needed for abandoned readers.
func (z *mlzsParallelReader) Close() error {
	select {
	case <-z.quit:
	default:
		close(z.quit)
	}
	if z.err == nil {
		z.err = io.EOF
	}
	return nil
}

// MLZSChunk locates one chunk of a container.
type MLZSChunk struct {
	// Off is the file offset of the chunk's frame.
	Off int64
	// RawOff and RawLen place the chunk in the decompressed stream.
	RawOff int64
	RawLen int64
}

// MLZSIndex is the decoded chunk table of a container.
type MLZSIndex struct {
	// ChunkSize, Align and AlignOffset echo the writer's options from the
	// container header.
	ChunkSize   int64
	Align       int64
	AlignOffset int64
	// HeaderLen is the encoded header length (the offset of chunk 0's frame).
	HeaderLen int64
	Chunks    []MLZSChunk
	// RawSize is the total decompressed size.
	RawSize int64
}

// NumChunks returns the number of chunks in the container.
func (ix *MLZSIndex) NumChunks() int { return len(ix.Chunks) }

// Aligned reports whether every chunk boundary lies at a raw offset
// ≡ off (mod align) — the contract record-granular consumers (the trace
// cache) check before decoding chunks independently.
func (ix *MLZSIndex) Aligned(align, off int64) bool {
	return ix.Align == align && ix.AlignOffset == off && ix.Align > 0
}

// ReadMLZSIndex locates and decodes the index trailer of an MLZS container
// through the fixed footer at the end of the file. Damage anywhere on that
// path — missing footer, trailer CRC mismatch, implausible offsets — yields
// a typed error (never a wrong table); callers that can still stream fall
// back to ScanMLZSIndex or a plain sequential read.
func ReadMLZSIndex(ra io.ReaderAt, size int64) (*MLZSIndex, error) {
	if size < mlzsFooterSize+6 {
		return nil, fmt.Errorf("compress: MLZS index: %d-byte file cannot hold a footer: %w", size, faults.ErrTruncated)
	}
	var footer [mlzsFooterSize]byte
	if _, err := ra.ReadAt(footer[:], size-mlzsFooterSize); err != nil {
		return nil, fmt.Errorf("compress: MLZS index: reading footer: %w", err)
	}
	if [4]byte(footer[8:12]) != mlzsEndMagic {
		return nil, fmt.Errorf("compress: MLZS index: missing footer magic: %w", faults.ErrCorrupt)
	}
	trailerLen := int64(binary.LittleEndian.Uint32(footer[0:4]))
	wantCRC := binary.LittleEndian.Uint32(footer[4:8])
	if trailerLen > size-mlzsFooterSize {
		return nil, fmt.Errorf("compress: MLZS index: trailer length %d exceeds file: %w", trailerLen, faults.ErrCorrupt)
	}
	trailer := make([]byte, trailerLen)
	if _, err := ra.ReadAt(trailer, size-mlzsFooterSize-trailerLen); err != nil {
		return nil, fmt.Errorf("compress: MLZS index: reading trailer: %w", err)
	}
	if got := crc32.Checksum(trailer, mlzsCastagnoli); got != wantCRC {
		return nil, fmt.Errorf("compress: MLZS index: trailer checksum mismatch (got %#08x, want %#08x): %w", got, wantCRC, faults.ErrCorrupt)
	}
	hdrBuf := make([]byte, 64)
	if n, err := ra.ReadAt(hdrBuf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("compress: MLZS index: reading header: %w", err)
	} else {
		hdrBuf = hdrBuf[:n]
	}
	cs := &countingByteSource{r: bytes.NewReader(hdrBuf)}
	h, err := parseMLZSHeader(cs)
	if err != nil {
		return nil, err
	}
	ix := &MLZSIndex{ChunkSize: h.chunkSize, Align: h.align, AlignOffset: h.alignOff, HeaderLen: h.length}
	tr := bytes.NewReader(trailer)
	count, err := binary.ReadUvarint(tr)
	if err != nil {
		return nil, fmt.Errorf("compress: MLZS index: %w", classifyVarintErr(err))
	}
	// Each chunk costs at least 7 frame bytes, so a count beyond the file
	// size is hostile; reject before allocating for it.
	if count > uint64(size) {
		return nil, fmt.Errorf("compress: MLZS index declares %d chunks in a %d-byte file: %w", count, size, faults.ErrLimit)
	}
	ix.Chunks = make([]MLZSChunk, 0, count)
	off, rawOff := int64(0), int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, fmt.Errorf("compress: MLZS index: %w", classifyVarintErr(err))
		}
		rawLen, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, fmt.Errorf("compress: MLZS index: %w", classifyVarintErr(err))
		}
		off += int64(delta)
		if delta == 0 || off >= size || rawLen == 0 || rawLen > mlzBlockSize {
			return nil, fmt.Errorf("compress: MLZS index: implausible chunk %d (offset %d, raw %d): %w", i, off, rawLen, faults.ErrCorrupt)
		}
		ix.Chunks = append(ix.Chunks, MLZSChunk{Off: off, RawOff: rawOff, RawLen: int64(rawLen)})
		rawOff += int64(rawLen)
	}
	if tr.Len() != 0 {
		return nil, fmt.Errorf("compress: MLZS index: %d trailing trailer bytes: %w", tr.Len(), faults.ErrCorrupt)
	}
	ix.RawSize = rawOff
	return ix, nil
}

// ScanMLZSIndex rebuilds the chunk table by scanning frames sequentially,
// for containers whose trailer is damaged or still being written. Payloads
// are skipped, not decompressed or CRC-verified.
func ScanMLZSIndex(r io.Reader) (*MLZSIndex, error) {
	src, ok := r.(byteSource)
	if !ok {
		src = &byteReader{r: r}
	}
	cs := &countingByteSource{r: src}
	h, err := parseMLZSHeader(cs)
	if err != nil {
		return nil, err
	}
	ix := &MLZSIndex{ChunkSize: h.chunkSize, Align: h.align, AlignOffset: h.alignOff, HeaderLen: h.length}
	rawOff := int64(0)
	for chunk := 0; ; chunk++ {
		off := cs.n
		fr, done, err := readMLZSFrameHeader(cs, chunk)
		if err != nil {
			return nil, err
		}
		if done {
			ix.RawSize = rawOff
			return ix, nil
		}
		if _, err := io.CopyN(io.Discard, cs, fr.dataLen); err != nil {
			return nil, fmt.Errorf("compress: MLZS chunk %d payload: %w", chunk, faults.ErrTruncated)
		}
		ix.Chunks = append(ix.Chunks, MLZSChunk{Off: off, RawOff: rawOff, RawLen: fr.rawLen})
		rawOff += fr.rawLen
	}
}

// MLZSChunkDecoder decodes chunks of one container through an io.ReaderAt,
// reusing its buffers across calls. It is not safe for concurrent use; give
// each goroutine its own decoder (the underlying ReaderAt may be shared —
// os.File ReadAt is concurrency-safe).
type MLZSChunkDecoder struct {
	ra      io.ReaderAt
	ix      *MLZSIndex
	huff    huffDecoder
	frame   []byte
	scratch []byte
}

// NewMLZSChunkDecoder returns a decoder for the indexed container in ra.
func NewMLZSChunkDecoder(ra io.ReaderAt, ix *MLZSIndex) *MLZSChunkDecoder {
	return &MLZSChunkDecoder{ra: ra, ix: ix}
}

// Decode returns the decompressed bytes of chunk i. The result aliases the
// decoder's internal buffer and is valid until the next Decode call. The
// frame is re-validated against the index (tag, raw length, CRC), so a
// stale or hostile index yields a typed error rather than wrong bytes.
func (d *MLZSChunkDecoder) Decode(i int) ([]byte, error) {
	if i < 0 || i >= len(d.ix.Chunks) {
		return nil, fmt.Errorf("compress: MLZS chunk %d out of range [0, %d): %w", i, len(d.ix.Chunks), faults.ErrCorrupt)
	}
	ci := d.ix.Chunks[i]
	// One frame header is at most 1 + 10 + 1 + 10 + 4 bytes; over-read and
	// parse from memory, then fetch the payload precisely.
	const maxFrameHeader = 26
	if cap(d.frame) < maxFrameHeader {
		d.frame = make([]byte, maxFrameHeader)
	}
	hdr := d.frame[:maxFrameHeader]
	n, err := d.ra.ReadAt(hdr, ci.Off)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("compress: MLZS chunk %d: %w", i, err)
	}
	cs := &countingByteSource{r: bytes.NewReader(hdr[:n])}
	fr, done, err := readMLZSFrameHeader(cs, i)
	if err != nil {
		return nil, err
	}
	if done || fr.rawLen != ci.RawLen {
		return nil, fmt.Errorf("compress: MLZS chunk %d frame disagrees with index: %w", i, faults.ErrCorrupt)
	}
	if cap(d.scratch) < int(fr.dataLen) {
		d.scratch = make([]byte, fr.dataLen)
	}
	payload := d.scratch[:fr.dataLen]
	if _, err := io.ReadFull(io.NewSectionReader(d.ra, ci.Off+cs.n, fr.dataLen), payload); err != nil {
		return nil, fmt.Errorf("compress: MLZS chunk %d payload: %w", i, faults.ErrTruncated)
	}
	block, err := mlzsDecodePayload(&d.huff, nil, fr, payload, i)
	if err != nil {
		return nil, err
	}
	return block, nil
}

// MLZSStat summarises a container file for tooling (mbptrace info).
type MLZSStat struct {
	Chunks         int
	ChunkSize      int64
	Align          int64
	AlignOffset    int64
	RawSize        int64
	CompressedSize int64
	// Indexed reports whether the trailer was intact; false means the stat
	// came from a sequential scan.
	Indexed bool
}

// StatMLZSFile reads the container summary of an MLZS file, falling back to
// a sequential frame scan when the index trailer is damaged.
func StatMLZSFile(path string) (*MLZSStat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //mbpvet:ignore droppederr -- read side: nothing to lose on a read-only close
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	stat := &MLZSStat{CompressedSize: fi.Size()}
	ix, err := ReadMLZSIndex(f, fi.Size())
	if err != nil {
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			return nil, serr
		}
		ix, err = ScanMLZSIndex(bufio.NewReaderSize(f, 1<<16))
		if err != nil {
			return nil, err
		}
	} else {
		stat.Indexed = true
	}
	stat.Chunks = ix.NumChunks()
	stat.ChunkSize = ix.ChunkSize
	stat.Align = ix.Align
	stat.AlignOffset = ix.AlignOffset
	stat.RawSize = ix.RawSize
	return stat, nil
}
