package compress

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"mbplib/internal/faults"
)

// mlzsTestPayload builds a compressible-but-not-trivial byte stream: runs of
// repeated phrases interleaved with pseudo-random bytes, the texture of a
// branch trace.
func mlzsTestPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	phrase := []byte("branch trace packets repeat at fixed offsets ")
	for len(out) < n {
		if rng.Intn(3) == 0 {
			var noise [64]byte
			rng.Read(noise[:])
			out = append(out, noise[:]...)
		} else {
			out = append(out, phrase...)
		}
	}
	return out[:n]
}

// mlzsCompress writes data through an MLZS writer and returns the container.
func mlzsCompress(t *testing.T, data []byte, opts MLZSOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewMLZSWriter(&buf, opts)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("mlzs write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("mlzs close: %v", err)
	}
	return buf.Bytes()
}

// mlzsDecompress reads a container back at the given decode worker count.
func mlzsDecompress(t *testing.T, container []byte, workers int) []byte {
	t.Helper()
	r, err := NewMLZSReader(bytes.NewReader(container), workers)
	if err != nil {
		t.Fatalf("mlzs open (workers=%d): %v", workers, err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("mlzs read (workers=%d): %v", workers, err)
	}
	return got
}

func TestMLZSRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 100, 4096, 1 << 16, 1<<18 + 137}
	chunkSizes := []int{512, 4096, 1 << 16}
	for _, n := range sizes {
		for _, cs := range chunkSizes {
			for _, cw := range []int{1, 3} {
				data := mlzsTestPayload(n, int64(n)^int64(cs))
				container := mlzsCompress(t, data, MLZSOptions{ChunkSize: cs, Workers: cw})
				for _, dw := range []int{1, 2, 4} {
					got := mlzsDecompress(t, container, dw)
					if !bytes.Equal(got, data) {
						t.Fatalf("n=%d chunk=%d cw=%d dw=%d: round-trip mismatch (%d bytes out)", n, cs, cw, dw, len(got))
					}
				}
			}
		}
	}
}

// TestMLZSDeterministicAcrossCompressWorkers pins the pgzip-style contract:
// the container bytes are identical at any compression worker count.
func TestMLZSDeterministicAcrossCompressWorkers(t *testing.T) {
	data := mlzsTestPayload(1<<18+77, 42)
	opts := MLZSOptions{ChunkSize: 8192, Level: LevelBest}
	want := mlzsCompress(t, data, opts)
	for _, cw := range []int{2, 4, 7} {
		o := opts
		o.Workers = cw
		if got := mlzsCompress(t, data, o); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: container differs from sequential (%d vs %d bytes)", cw, len(got), len(want))
		}
	}
}

func TestMLZSIndexMatchesScan(t *testing.T) {
	data := mlzsTestPayload(1<<17+300, 7)
	container := mlzsCompress(t, data, MLZSOptions{ChunkSize: 4096})
	ix, err := ReadMLZSIndex(bytes.NewReader(container), int64(len(container)))
	if err != nil {
		t.Fatalf("ReadMLZSIndex: %v", err)
	}
	scan, err := ScanMLZSIndex(bytes.NewReader(container))
	if err != nil {
		t.Fatalf("ScanMLZSIndex: %v", err)
	}
	if len(ix.Chunks) != len(scan.Chunks) {
		t.Fatalf("index has %d chunks, scan %d", len(ix.Chunks), len(scan.Chunks))
	}
	for i := range ix.Chunks {
		if ix.Chunks[i] != scan.Chunks[i] {
			t.Fatalf("chunk %d: index %+v, scan %+v", i, ix.Chunks[i], scan.Chunks[i])
		}
	}
	if ix.RawSize != int64(len(data)) || scan.RawSize != int64(len(data)) {
		t.Fatalf("raw size: index %d, scan %d, want %d", ix.RawSize, scan.RawSize, len(data))
	}
}

func TestMLZSChunkDecoder(t *testing.T) {
	data := mlzsTestPayload(1<<16+513, 11)
	container := mlzsCompress(t, data, MLZSOptions{ChunkSize: 2048, Level: LevelBest})
	ra := bytes.NewReader(container)
	ix, err := ReadMLZSIndex(ra, int64(len(container)))
	if err != nil {
		t.Fatalf("ReadMLZSIndex: %v", err)
	}
	dec := NewMLZSChunkDecoder(ra, ix)
	// Decode out of order to prove chunks are independent.
	order := rand.New(rand.NewSource(3)).Perm(ix.NumChunks())
	for _, i := range order {
		ci := ix.Chunks[i]
		got, err := dec.Decode(i)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		want := data[ci.RawOff : ci.RawOff+ci.RawLen]
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: decoded %d bytes, mismatch with raw [%d:%d]", i, len(got), ci.RawOff, ci.RawOff+ci.RawLen)
		}
	}
	if _, err := dec.Decode(ix.NumChunks()); err == nil {
		t.Fatal("out-of-range chunk decoded without error")
	}
}

// TestMLZSAlignment checks the packet-alignment contract the trace cache
// relies on: with align=16/off=24, every chunk boundary is at a raw offset
// ≡ 24 (mod 16).
func TestMLZSAlignment(t *testing.T) {
	data := mlzsTestPayload(24+16*5000+8, 99) // header + packets + a partial tail
	container := mlzsCompress(t, data, MLZSOptions{ChunkSize: 1 << 12, Align: 16, AlignOffset: 24})
	ix, err := ReadMLZSIndex(bytes.NewReader(container), int64(len(container)))
	if err != nil {
		t.Fatalf("ReadMLZSIndex: %v", err)
	}
	if !ix.Aligned(16, 24) {
		t.Fatalf("index does not report alignment: %+v", ix)
	}
	for i, ci := range ix.Chunks {
		if i == 0 {
			if ci.RawOff != 0 {
				t.Fatalf("chunk 0 starts at raw offset %d", ci.RawOff)
			}
			continue
		}
		if (ci.RawOff-24)%16 != 0 {
			t.Fatalf("chunk %d starts at unaligned raw offset %d", i, ci.RawOff)
		}
	}
	if got := mlzsDecompress(t, container, 2); !bytes.Equal(got, data) {
		t.Fatal("aligned container round-trip mismatch")
	}
}

func TestMLZSEmptyStream(t *testing.T) {
	container := mlzsCompress(t, nil, MLZSOptions{})
	if got := mlzsDecompress(t, container, 1); len(got) != 0 {
		t.Fatalf("empty stream decoded to %d bytes", len(got))
	}
	if got := mlzsDecompress(t, container, 4); len(got) != 0 {
		t.Fatalf("empty stream decoded to %d bytes at 4 workers", len(got))
	}
	ix, err := ReadMLZSIndex(bytes.NewReader(container), int64(len(container)))
	if err != nil {
		t.Fatalf("ReadMLZSIndex on empty container: %v", err)
	}
	if ix.NumChunks() != 0 || ix.RawSize != 0 {
		t.Fatalf("empty container index: %+v", ix)
	}
}

// TestMLZSThroughCompressAPI proves the container flows through the generic
// entry points old callers use: Detect, FormatForPath, NewReader, NewWriter.
func TestMLZSThroughCompressAPI(t *testing.T) {
	if got := FormatForPath("trace.sbbt.mlzs"); got != FormatMLZS {
		t.Fatalf("FormatForPath(.mlzs) = %v", got)
	}
	if got := FormatForPath("trace.sbbt.mlz"); got != FormatMLZ {
		t.Fatalf("FormatForPath(.mlz) = %v", got)
	}
	data := mlzsTestPayload(1<<15, 5)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, FormatMLZS, LevelFast)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := Detect(buf.Bytes()[:4]); got != FormatMLZS {
		t.Fatalf("Detect = %v", got)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("NewReader round-trip mismatch")
	}
	// And the parallel generic entry point, over a legacy MLZ stream too:
	// old traces must read unchanged regardless of the worker knob.
	var legacy bytes.Buffer
	lw := NewMLZWriter(&legacy, LevelFast)
	if _, err := lw.Write(data); err != nil {
		t.Fatalf("mlz write: %v", err)
	}
	if err := lw.Close(); err != nil {
		t.Fatalf("mlz close: %v", err)
	}
	for _, src := range [][]byte{buf.Bytes(), legacy.Bytes()} {
		pr, err := NewReaderParallel(bytes.NewReader(src), 4)
		if err != nil {
			t.Fatalf("NewReaderParallel: %v", err)
		}
		got, err := io.ReadAll(pr)
		if err != nil {
			t.Fatalf("parallel read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("NewReaderParallel round-trip mismatch")
		}
	}
}

// TestMLZSParallelReaderClose abandons a parallel reader mid-stream; Close
// must release the pipeline without deadlocking and further Reads must fail.
func TestMLZSParallelReaderClose(t *testing.T) {
	data := mlzsTestPayload(1<<18, 13)
	container := mlzsCompress(t, data, MLZSOptions{ChunkSize: 1024})
	r, err := NewMLZSReader(bytes.NewReader(container), 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var first [10]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if err := r.(io.Closer).Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := r.Read(first[:]); err == nil {
		t.Fatal("read after close succeeded")
	}
}

// TestMLZSErrorEquivalence corrupts a container in targeted ways and
// requires the sequential and parallel readers to deliver the same byte
// count and the same error text — the decode-j byte-identity contract on
// the failure path.
func TestMLZSErrorEquivalence(t *testing.T) {
	data := mlzsTestPayload(1<<15, 21)
	pristine := mlzsCompress(t, data, MLZSOptions{ChunkSize: 1024})
	ix, err := ReadMLZSIndex(bytes.NewReader(pristine), int64(len(pristine)))
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	if ix.NumChunks() < 4 {
		t.Fatalf("want >= 4 chunks, got %d", ix.NumChunks())
	}
	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), pristine...))
		type result struct {
			n   int
			err error
		}
		read := func(workers int) result {
			r, err := NewMLZSReader(bytes.NewReader(b), workers)
			if err != nil {
				return result{0, err}
			}
			n, err := io.Copy(io.Discard, r)
			return result{int(n), err}
		}
		seq := read(1)
		for _, w := range []int{2, 4} {
			par := read(w)
			if par.n != seq.n || fmt.Sprint(par.err) != fmt.Sprint(seq.err) {
				t.Errorf("%s: workers=%d got (%d, %v), sequential (%d, %v)", name, w, par.n, par.err, seq.n, seq.err)
			}
		}
		if seq.err != nil && faults.Class(seq.err) == "other" {
			t.Errorf("%s: untyped error %v", name, seq.err)
		}
	}
	mutate("flip payload byte in chunk 2", func(b []byte) []byte {
		b[ix.Chunks[2].Off+20] ^= 0x01
		return b
	})
	mutate("truncate mid chunk 3", func(b []byte) []byte {
		return b[:ix.Chunks[3].Off+3]
	})
	mutate("bad frame tag", func(b []byte) []byte {
		b[ix.Chunks[1].Off] = 0x7f
		return b
	})
	mutate("truncate before end tag", func(b []byte) []byte {
		last := ix.Chunks[len(ix.Chunks)-1]
		return b[:last.Off] // stream ends where a frame should start
	})
}

// TestMLZSIndexFallback damages the footer and trailer: ReadMLZSIndex must
// return a typed error while the sequential paths (scan and stream) still
// deliver the correct bytes.
func TestMLZSIndexFallback(t *testing.T) {
	data := mlzsTestPayload(1<<14, 31)
	pristine := mlzsCompress(t, data, MLZSOptions{ChunkSize: 1024})
	cases := map[string]func(b []byte) []byte{
		"footer magic":    func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"trailer crc":     func(b []byte) []byte { b[len(b)-20] ^= 0x01; return b },
		"footer truncate": func(b []byte) []byte { return b[:len(b)-5] },
	}
	for name, f := range cases {
		b := f(append([]byte(nil), pristine...))
		if _, err := ReadMLZSIndex(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Errorf("%s: damaged index read without error", name)
		} else if faults.Class(err) == "other" {
			t.Errorf("%s: untyped index error %v", name, err)
		}
		// The data frames are intact, so streaming and scanning still work.
		r, err := NewMLZSReader(bytes.NewReader(b), 2)
		if err != nil {
			t.Errorf("%s: stream open: %v", name, err)
			continue
		}
		got, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("%s: stream fallback mismatch (err %v)", name, err)
		}
		if ix, err := ScanMLZSIndex(bytes.NewReader(b)); err != nil {
			t.Errorf("%s: scan fallback: %v", name, err)
		} else if ix.RawSize != int64(len(data)) {
			t.Errorf("%s: scan raw size %d, want %d", name, ix.RawSize, len(data))
		}
	}
}

func TestMLZSCorruptChunkIsTyped(t *testing.T) {
	data := mlzsTestPayload(1<<13, 17)
	container := mlzsCompress(t, data, MLZSOptions{ChunkSize: 512})
	ix, err := ReadMLZSIndex(bytes.NewReader(container), int64(len(container)))
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	b := append([]byte(nil), container...)
	b[ix.Chunks[1].Off+15] ^= 0x40
	ra := bytes.NewReader(b)
	dec := NewMLZSChunkDecoder(ra, ix)
	if got, err := dec.Decode(0); err != nil || !bytes.Equal(got, data[:ix.Chunks[0].RawLen]) {
		t.Fatalf("undamaged chunk 0 failed: %v", err)
	}
	if _, err := dec.Decode(1); err == nil {
		t.Fatal("corrupt chunk decoded without error")
	} else if !errors.Is(err, faults.ErrCorrupt) && !errors.Is(err, faults.ErrTruncated) && !errors.Is(err, faults.ErrLimit) {
		t.Fatalf("corrupt chunk error not typed: %v", err)
	}
	ci := ix.Chunks[2]
	if got, err := dec.Decode(2); err != nil || !bytes.Equal(got, data[ci.RawOff:ci.RawOff+ci.RawLen]) {
		t.Fatalf("undamaged chunk 2 failed after corrupt neighbour: %v", err)
	}
}

// FuzzMLZSRoundTrip feeds arbitrary payloads through the chunked container
// at fuzzed chunk sizes and worker counts, requires exact reconstruction at
// decode-j 1 and 3, and feeds the raw fuzz payload to the decoder and index
// readers, which must reject or decode without panicking.
func FuzzMLZSRoundTrip(f *testing.F) {
	f.Add([]byte(""), uint16(1), true)
	f.Add([]byte("abcabcabcabcabcabc"), uint16(4), false)
	f.Add(bytes.Repeat([]byte{0x00, 0x01, 0x02, 0x03}, 4096), uint16(64), true)
	f.Add([]byte("MLZS\x01\x80\x08\x00\x00"), uint16(9), false) // magic + header-ish
	f.Add(bytes.Repeat([]byte("branch trace packets repeat at fixed offsets "), 64), uint16(300), true)

	f.Fuzz(func(t *testing.T, data []byte, chunkSize uint16, best bool) {
		level := LevelFast
		if best {
			level = LevelBest
		}
		opts := MLZSOptions{ChunkSize: int(chunkSize), Level: level, Workers: 1 + int(chunkSize)%3}
		var comp bytes.Buffer
		w := NewMLZSWriter(&comp, opts)
		if _, err := w.Write(data); err != nil {
			t.Fatalf("compress write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("compress close: %v", err)
		}
		for _, workers := range []int{1, 3} {
			r, err := NewMLZSReader(bytes.NewReader(comp.Bytes()), workers)
			if err != nil {
				t.Fatalf("opening container (workers=%d): %v", workers, err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("decompress (workers=%d): %v", workers, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round-trip mismatch at %d workers: %d bytes in, %d bytes out", workers, len(data), len(got))
			}
		}
		if ix, err := ReadMLZSIndex(bytes.NewReader(comp.Bytes()), int64(comp.Len())); err != nil {
			t.Fatalf("index of pristine container: %v", err)
		} else if ix.RawSize != int64(len(data)) {
			t.Fatalf("index raw size %d, want %d", ix.RawSize, len(data))
		}

		// The decoders must survive the raw fuzz payload itself: a clean
		// error or a successful decode, never a panic.
		if r, err := NewMLZSReader(bytes.NewReader(data), 2); err == nil {
			io.Copy(io.Discard, r) //nolint:errcheck // any outcome but a panic is acceptable here
		}
		ReadMLZSIndex(bytes.NewReader(data), int64(len(data))) //nolint:errcheck // same: must not panic
		ScanMLZSIndex(bytes.NewReader(data))                   //nolint:errcheck // same: must not panic
	})
}

// FuzzMLZSIndexTrailer mutates one byte of a pristine container (weighted
// toward the trailer and footer) and requires that the index either fails
// with a typed error or — if the mutation missed everything CRC-protected —
// still describes chunks that decode to the original bytes. Wrong events
// are never acceptable; a damaged trailer must push readers to the
// sequential-scan fallback instead.
func FuzzMLZSIndexTrailer(f *testing.F) {
	base := mlzsTestPayloadF(1<<12, 1)
	var buf bytes.Buffer
	w := NewMLZSWriter(&buf, MLZSOptions{ChunkSize: 256})
	w.Write(base) //nolint:errcheck // bytes.Buffer cannot fail
	w.Close()     //nolint:errcheck // bytes.Buffer cannot fail
	pristine := buf.Bytes()
	f.Add(uint32(len(pristine)-1), byte(0xff))
	f.Add(uint32(len(pristine)-10), byte(0x01))
	f.Add(uint32(len(pristine)-20), byte(0x80))
	f.Add(uint32(0), byte(0x20))

	f.Fuzz(func(t *testing.T, pos uint32, xor byte) {
		if xor == 0 {
			return
		}
		b := append([]byte(nil), pristine...)
		// Bias positions into the last quarter (trailer + footer) half the
		// time, so the index machinery gets the attention.
		p := int(pos) % len(b)
		if pos%2 == 0 {
			p = len(b) - 1 - int(pos)%(len(b)/4)
		}
		b[p] ^= xor
		ix, err := ReadMLZSIndex(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			if faults.Class(err) == "other" {
				t.Fatalf("mutated index: untyped error %v", err)
			}
			// Fallback path: the scan must still be available for pristine
			// frames; if the mutation hit a frame it may fail typed too.
			if _, serr := ScanMLZSIndex(bytes.NewReader(b)); serr != nil && faults.Class(serr) == "other" {
				t.Fatalf("scan fallback: untyped error %v", serr)
			}
			return
		}
		// The index parsed: every chunk it describes must decode to exactly
		// the original bytes or fail typed — never wrong data.
		dec := NewMLZSChunkDecoder(bytes.NewReader(b), ix)
		for i, ci := range ix.Chunks {
			got, derr := dec.Decode(i)
			if derr != nil {
				if faults.Class(derr) == "other" {
					t.Fatalf("chunk %d: untyped error %v", i, derr)
				}
				continue
			}
			if ci.RawOff+ci.RawLen > int64(len(base)) {
				t.Fatalf("chunk %d: index maps past raw stream", i)
			}
			if !bytes.Equal(got, base[ci.RawOff:ci.RawOff+ci.RawLen]) {
				t.Fatalf("chunk %d: mutated container decoded to wrong bytes", i)
			}
		}
	})
}

// mlzsTestPayloadF is mlzsTestPayload without *testing.T, for fuzz seeds.
func mlzsTestPayloadF(n int, seed int64) []byte {
	return mlzsTestPayload(n, seed)
}
