package compress

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripMLZ(t *testing.T, data []byte, level Level) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewMLZWriter(&buf, level)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewMLZReader(&buf)
	if err != nil {
		t.Fatalf("NewMLZReader: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
	}
	return buf.Bytes()
}

func TestMLZRoundTripEmpty(t *testing.T) {
	roundTripMLZ(t, nil, LevelFast)
	roundTripMLZ(t, nil, LevelBest)
}

func TestMLZRoundTripSmall(t *testing.T) {
	roundTripMLZ(t, []byte("hello"), LevelFast)
	roundTripMLZ(t, []byte("abc"), LevelBest) // below minMatch
	roundTripMLZ(t, []byte{0}, LevelBest)
}

func TestMLZRoundTripRepetitive(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 2000))
	enc := roundTripMLZ(t, data, LevelBest)
	if len(enc) > len(data)/5 {
		t.Errorf("repetitive data compressed to %d of %d bytes; expected < 20%%", len(enc), len(data))
	}
}

func TestMLZRoundTripRunLength(t *testing.T) {
	// Overlapping matches (offset < length) exercise the RLE copy path.
	data := bytes.Repeat([]byte{0xaa}, 100000)
	enc := roundTripMLZ(t, data, LevelFast)
	if len(enc) > 2000 {
		t.Errorf("constant data compressed to %d bytes; expected tiny", len(enc))
	}
}

func TestMLZRoundTripIncompressible(t *testing.T) {
	data := make([]byte, 70000)
	state := uint64(12345)
	for i := range data {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		data[i] = byte(state * 0x2545f4914f6cdd1d >> 56)
	}
	enc := roundTripMLZ(t, data, LevelBest)
	// Stored blocks keep overhead to the block headers.
	if len(enc) > len(data)+64 {
		t.Errorf("incompressible data expanded to %d of %d bytes", len(enc), len(data))
	}
}

func TestMLZMultiBlock(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789abcdef"), 3*mlzBlockSize/16)
	roundTripMLZ(t, data, LevelFast)
}

func TestMLZLongLiteralRun(t *testing.T) {
	// > 15 literals before the first match forces extended literal lengths.
	data := append([]byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!@#$"), bytes.Repeat([]byte("match_me"), 50)...)
	roundTripMLZ(t, data, LevelFast)
}

func TestMLZLongMatch(t *testing.T) {
	// Match length > 15+minMatch forces extended match lengths.
	data := append([]byte("seed"), bytes.Repeat([]byte("x"), 5000)...)
	roundTripMLZ(t, data, LevelBest)
}

// Property: arbitrary byte strings round trip at both levels.
func TestMLZRoundTripProperty(t *testing.T) {
	f := func(data []byte, best bool) bool {
		level := LevelFast
		if best {
			level = LevelBest
		}
		var buf bytes.Buffer
		w := NewMLZWriter(&buf, level)
		if _, err := w.Write(data); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewMLZReader(&buf)
		if err != nil {
			return false
		}
		got, err := io.ReadAll(r)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMLZBestBeatsOrMatchesFast(t *testing.T) {
	data := []byte(strings.Repeat("abcabcabdabcabcabe", 4000))
	fast := roundTripMLZ(t, data, LevelFast)
	best := roundTripMLZ(t, data, LevelBest)
	if len(best) > len(fast) {
		t.Errorf("LevelBest (%d bytes) worse than LevelFast (%d bytes)", len(best), len(fast))
	}
}

func TestMLZRejectsBadMagic(t *testing.T) {
	if _, err := NewMLZReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Errorf("NewMLZReader accepted bad magic")
	}
	if _, err := NewMLZReader(bytes.NewReader([]byte("ML"))); err == nil {
		t.Errorf("NewMLZReader accepted truncated magic")
	}
}

func TestMLZTruncatedStream(t *testing.T) {
	data := bytes.Repeat([]byte("hello world "), 1000)
	var buf bytes.Buffer
	w := NewMLZWriter(&buf, LevelFast)
	_, _ = w.Write(data)
	_ = w.Close()
	enc := buf.Bytes()
	r, err := NewMLZReader(bytes.NewReader(enc[:len(enc)/2]))
	if err != nil {
		t.Fatalf("NewMLZReader: %v", err)
	}
	if _, err := io.ReadAll(r); err == nil {
		t.Errorf("reading truncated stream succeeded")
	}
}

func TestMLZCorruptBlock(t *testing.T) {
	data := bytes.Repeat([]byte("hello world "), 100)
	var buf bytes.Buffer
	w := NewMLZWriter(&buf, LevelFast)
	_, _ = w.Write(data)
	_ = w.Close()
	enc := buf.Bytes()
	// Flip payload bytes; decoder must error, not panic or return bad data.
	for _, i := range []int{8, 12, 20} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		r, err := NewMLZReader(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		got, err := io.ReadAll(r)
		if err == nil && bytes.Equal(got, data) {
			// Flipping a literal byte changes content without an error;
			// equality here would mean the flip had no effect, which is
			// impossible for these offsets.
			t.Errorf("corrupt stream at byte %d round-tripped unchanged", i)
		}
	}
}

func TestMLZWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewMLZWriter(&buf, LevelFast)
	_ = w.Close()
	if _, err := w.Write([]byte("x")); err == nil {
		t.Errorf("Write after Close succeeded")
	}
}

func TestMLZRepeatOffsetsUsed(t *testing.T) {
	// A strictly periodic stream: after the first explicit offset, every
	// match should reuse it via rep codes, so the encoded size per period
	// must be tiny.
	data := bytes.Repeat([]byte("0123456789abcdefghijklmnopqrstuv"), 4000) // 128 KB
	var buf bytes.Buffer
	w := NewMLZWriter(&buf, LevelBest)
	_, _ = w.Write(data)
	_ = w.Close()
	if buf.Len() > 2000 {
		t.Errorf("periodic 128 KB stream compressed to %d bytes; rep codes not effective", buf.Len())
	}
	r, err := NewMLZReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestMLZBadOffsetCode(t *testing.T) {
	// Build a valid stream with a match, then corrupt the offset code to a
	// reserved value (4..255): the decoder must reject it.
	data := bytes.Repeat([]byte("abcdefgh"), 64)
	var buf bytes.Buffer
	w := NewMLZWriter(&buf, LevelFast)
	_, _ = w.Write(data)
	_ = w.Close()
	enc := buf.Bytes()
	// Find the first offset-code byte 3 (explicit offset marker) and bump
	// it to an invalid code. The payload begins after magic + header; scan
	// for a 3 followed by a plausible 3-byte offset.
	corrupted := false
	for i := 8; i < len(enc)-4; i++ {
		if enc[i] == 3 && enc[i+2] == 0 && enc[i+3] == 0 {
			enc[i] = 9
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("no explicit offset byte found to corrupt")
	}
	r, err := NewMLZReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); err == nil {
		t.Errorf("stream with reserved offset code accepted")
	}
}

func TestMLZRepOffsetBeyondStart(t *testing.T) {
	// Hand-craft a block whose first sequence uses rep0 (initial offset 1)
	// with no preceding output: offset > len(dst) must be rejected.
	payload := []byte{
		0x04<<4 | 0x0, // token: 4 literals, match extra 0 (length 4)
		'a', 'b', 'c', 'd',
		0x00, // offset code 0 = rep0 = 1 (valid: 1 <= 4 bytes emitted)
	}
	// rawLen 8: 4 literals + 4 match bytes. This one is actually valid;
	// now a variant with zero literals, where rep0=1 exceeds dst length 0.
	bad := []byte{
		0x00<<4 | 0x0, // token: 0 literals, match length 4
		0x00,          // rep0 = 1, but nothing emitted yet
	}
	if _, err := mlzDecodeBlock(nil, payload, 8); err != nil {
		t.Errorf("valid rep0 block rejected: %v", err)
	}
	if _, err := mlzDecodeBlock(nil, bad, 4); err == nil {
		t.Errorf("rep0 beyond start accepted")
	}
}
