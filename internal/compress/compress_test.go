package compress

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestDetect(t *testing.T) {
	cases := []struct {
		prefix []byte
		want   Format
	}{
		{[]byte{0x1f, 0x8b, 8, 0}, FormatGzip},
		{[]byte("MLZ1"), FormatMLZ},
		{[]byte("SBBT"), FormatRaw},
		{[]byte{}, FormatRaw},
		{[]byte{0x1f}, FormatRaw},
	}
	for _, c := range cases {
		if got := Detect(c.prefix); got != c.want {
			t.Errorf("Detect(%v) = %v, want %v", c.prefix, got, c.want)
		}
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"trace.sbbt.gz":  FormatGzip,
		"trace.sbbt.mlz": FormatMLZ,
		"trace.sbbt":     FormatRaw,
		"trace.bt9":      FormatRaw,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestFormatString(t *testing.T) {
	if FormatRaw.String() != "raw" || FormatGzip.String() != "gzip" || FormatMLZ.String() != "mlz" {
		t.Errorf("Format.String names wrong: %v %v %v", FormatRaw, FormatGzip, FormatMLZ)
	}
}

func TestNewReaderAutoDetectsGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte("payload data here")); err != nil {
		t.Fatal(err)
	}
	_ = zw.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "payload data here" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}

func TestNewReaderAutoDetectsMLZ(t *testing.T) {
	var buf bytes.Buffer
	w := NewMLZWriter(&buf, LevelBest)
	_, _ = w.Write(bytes.Repeat([]byte("mlz payload "), 100))
	_ = w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte("mlz payload "), 100)) {
		t.Fatalf("MLZ auto-detect round trip failed: %v", err)
	}
}

func TestNewReaderRawPassThrough(t *testing.T) {
	r, err := NewReader(bytes.NewReader([]byte("plain text")))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if string(got) != "plain text" {
		t.Errorf("raw pass-through = %q", got)
	}
}

func TestNewReaderEmpty(t *testing.T) {
	r, err := NewReader(bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("NewReader on empty input: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil || len(got) != 0 {
		t.Errorf("empty input read = %q, %v", got, err)
	}
}

func TestNewWriterFormats(t *testing.T) {
	payload := bytes.Repeat([]byte("format test data "), 200)
	for _, format := range []Format{FormatRaw, FormatGzip, FormatMLZ} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, format, LevelBest)
		if err != nil {
			t.Fatalf("NewWriter(%v): %v", format, err)
		}
		if _, err := w.Write(payload); err != nil {
			t.Fatalf("Write(%v): %v", format, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close(%v): %v", format, err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("NewReader(%v): %v", format, err)
		}
		got, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("format %v round trip failed: %v", format, err)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("file round trip "), 500)
	for _, name := range []string{"t.raw", "t.gz", "t.mlz"} {
		path := filepath.Join(dir, name)
		f, err := CreateFile(path, LevelBest)
		if err != nil {
			t.Fatalf("CreateFile(%s): %v", name, err)
		}
		if _, err := f.Write(payload); err != nil {
			t.Fatalf("Write(%s): %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("Close(%s): %v", name, err)
		}
		g, err := OpenFile(path)
		if err != nil {
			t.Fatalf("OpenFile(%s): %v", name, err)
		}
		got, err := io.ReadAll(g)
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("file %s round trip failed: %v", name, err)
		}
		_ = g.Close()
	}
	// Compressed files must actually be smaller than raw for this payload.
	rawInfo, _ := os.Stat(filepath.Join(dir, "t.raw"))
	gzInfo, _ := os.Stat(filepath.Join(dir, "t.gz"))
	mlzInfo, _ := os.Stat(filepath.Join(dir, "t.mlz"))
	if gzInfo.Size() >= rawInfo.Size() || mlzInfo.Size() >= rawInfo.Size() {
		t.Errorf("compressed sizes raw=%d gz=%d mlz=%d", rawInfo.Size(), gzInfo.Size(), mlzInfo.Size())
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Errorf("OpenFile on missing path succeeded")
	}
}
