package bt9

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

func TestReadBatchMatchesRead(t *testing.T) {
	evs := sampleEvents(5000)
	data := writeTrace(t, evs)

	want := func() []bp.Event {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		var out []bp.Event
		for {
			ev, err := r.Read()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			out = append(out, ev)
		}
	}()

	for _, dstLen := range []int{1, 13, 512, 8192} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		dst := make([]bp.Event, dstLen)
		var got []bp.Event
		for {
			n, err := r.ReadBatch(dst)
			got = append(got, dst[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("dstLen %d: ReadBatch: %v", dstLen, err)
			}
			if n == 0 {
				t.Fatal("ReadBatch returned (0, nil): progress guarantee violated")
			}
		}
		if len(got) != len(want) {
			t.Fatalf("dstLen %d: read %d events, want %d", dstLen, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dstLen %d: event %d = %+v, want %+v", dstLen, i, got[i], want[i])
			}
		}
		// Sticky after EOF.
		if n, err := r.ReadBatch(dst[:1]); n != 0 || err != io.EOF {
			t.Errorf("dstLen %d: post-EOF ReadBatch = (%d, %v)", dstLen, n, err)
		}
	}
}

func TestReadBatchBadEntryMidBatch(t *testing.T) {
	evs := sampleEvents(100)
	data := string(writeTrace(t, evs))
	// Corrupt the 51st sequence entry. The sequence section follows the
	// BT9_EDGE_SEQUENCE marker, one edge id per line.
	marker := "BT9_EDGE_SEQUENCE\n"
	seqStart := strings.Index(data, marker)
	if seqStart < 0 {
		t.Fatal("no sequence section")
	}
	head := data[:seqStart+len(marker)]
	lines := strings.Split(strings.TrimRight(data[seqStart+len(marker):], "\n"), "\n")
	lines[50] = "not-a-number"
	corrupt := head + strings.Join(lines, "\n") + "\n"

	r, err := NewReader(strings.NewReader(corrupt))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	dst := make([]bp.Event, 64)
	var got []bp.Event
	var final error
	for {
		n, err := r.ReadBatch(dst)
		got = append(got, dst[:n]...)
		if err != nil {
			final = err
			break
		}
	}
	if !errors.Is(final, faults.ErrCorrupt) {
		t.Fatalf("final error = %v, want ErrCorrupt", final)
	}
	if len(got) != 50 {
		t.Fatalf("decoded %d events before the bad entry, want 50", len(got))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
	// Sticky.
	if n, err := r.ReadBatch(dst[:1]); n != 0 || !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("post-error ReadBatch = (%d, %v)", n, err)
	}
}

func TestReadBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	evs := sampleEvents(60000)
	data := writeTrace(t, evs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	dst := make([]bp.Event, 4096)
	if _, err := r.ReadBatch(dst); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.ReadBatch(dst); err != nil && err != io.EOF {
			t.Fatalf("ReadBatch: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("ReadBatch allocates %.1f times per batch, want 0", allocs)
	}
}
