package bt9

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"mbplib/internal/bp"
)

func sampleEvents(n int) []bp.Event {
	evs := make([]bp.Event, n)
	for i := range evs {
		op := bp.OpCondJump
		taken := i%3 != 0
		target := uint64(0x500000 + (i%7)*16)
		switch i % 11 {
		case 9:
			op, taken = bp.OpCall, true
		case 10:
			op, taken = bp.OpRet, true
			target = 0x600000 + uint64(i%5)*8
		}
		evs[i] = bp.Event{
			Branch: bp.Branch{
				IP:     0x400000 + uint64(i%13)*4,
				Target: target,
				Opcode: op,
				Taken:  taken,
			},
			InstrsSinceLastBranch: uint64(i % 6),
		}
	}
	// Same IP must keep the same opcode: derive IP from opcode class too.
	for i := range evs {
		evs[i].Branch.IP += uint64(evs[i].Branch.Opcode) << 20
	}
	return evs
}

func writeTrace(t *testing.T, evs []bp.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	evs := sampleEvents(5000)
	data := writeTrace(t, evs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.TotalBranches() != uint64(len(evs)) {
		t.Errorf("TotalBranches = %d, want %d", r.TotalBranches(), len(evs))
	}
	var instrs uint64
	for _, ev := range evs {
		instrs += ev.InstrsSinceLastBranch + 1
	}
	if r.TotalInstructions() != instrs {
		t.Errorf("TotalInstructions = %d, want %d", r.TotalInstructions(), instrs)
	}
	for i, want := range evs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("final Read err = %v, want io.EOF", err)
	}
}

func TestGraphIsDeduplicated(t *testing.T) {
	evs := sampleEvents(5000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range evs {
		_ = w.Write(ev)
	}
	s := w.Stats()
	if s.Nodes >= 100 {
		t.Errorf("expected few static nodes, got %d", s.Nodes)
	}
	if s.Edges >= 2000 {
		t.Errorf("expected few distinct edges, got %d", s.Edges)
	}
	if s.Sequence != len(evs) {
		t.Errorf("sequence length = %d, want %d", s.Sequence, len(evs))
	}
	if s.HottestNodeIP == 0 {
		t.Errorf("hottest node not identified")
	}
}

func TestHeaderFormat(t *testing.T) {
	data := writeTrace(t, sampleEvents(10))
	text := string(data)
	if !strings.HasPrefix(text, Magic+"\n") {
		t.Errorf("missing magic line")
	}
	for _, want := range []string{"total_instruction_count:", "branch_instruction_count: 10", "BT9_NODES", "BT9_EDGES", "BT9_EDGE_SEQUENCE"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriterRejectsOpcodeChange(t *testing.T) {
	w := NewWriter(io.Discard)
	ev := bp.Event{Branch: bp.Branch{IP: 0x400000, Target: 0x400040, Opcode: bp.OpCondJump, Taken: true}}
	if err := w.Write(ev); err != nil {
		t.Fatal(err)
	}
	ev.Branch.Opcode = bp.OpCall
	if err := w.Write(ev); err == nil {
		t.Errorf("opcode change for the same IP accepted")
	}
}

func TestWriterRejectsInvalidEvent(t *testing.T) {
	w := NewWriter(io.Discard)
	bad := bp.Event{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpJump, Taken: false}}
	if err := w.Write(bad); err == nil {
		t.Errorf("invalid event accepted")
	}
}

func TestWriteAfterClose(t *testing.T) {
	w := NewWriter(io.Discard)
	_ = w.Close()
	ev := bp.Event{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpCondJump, Taken: true}}
	if err := w.Write(ev); err == nil {
		t.Errorf("Write after Close succeeded")
	}
	if err := w.Close(); err == nil {
		t.Errorf("double Close succeeded")
	}
}

func TestReaderErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad magic":    "NOT_BT9\n",
		"no sequence":  Magic + "\ntotal_instruction_count: 5\n",
		"bad node":     Magic + "\nBT9_NODES\nNODE x\nBT9_EDGE_SEQUENCE\n",
		"bad node id":  Magic + "\nBT9_NODES\nNODE 5 400000 COND DIR JMP\nBT9_EDGE_SEQUENCE\n",
		"bad edge ref": Magic + "\nBT9_NODES\nBT9_EDGES\nEDGE 0 7 T 0 0\nBT9_EDGE_SEQUENCE\n",
		"bad header":   Magic + "\ntotal_instruction_count: abc\nBT9_EDGE_SEQUENCE\n",
	}
	for name, text := range cases {
		if _, err := NewReader(strings.NewReader(text)); err == nil {
			t.Errorf("%s: NewReader succeeded", name)
		}
	}
}

func TestReaderBadSequenceEntry(t *testing.T) {
	text := Magic + "\nbranch_instruction_count: 1\nBT9_NODES\nNODE 0 400000 COND DIR JMP\nBT9_EDGES\nEDGE 0 0 T 400040 3\nBT9_EDGE_SEQUENCE\n99\n"
	r, err := NewReader(strings.NewReader(text))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Read(); err == nil {
		t.Errorf("out-of-range edge id accepted")
	}
}

func TestReaderDetectsShortSequence(t *testing.T) {
	text := Magic + "\nbranch_instruction_count: 5\nBT9_NODES\nNODE 0 400000 COND DIR JMP\nBT9_EDGES\nEDGE 0 0 T 400040 3\nBT9_EDGE_SEQUENCE\n0\n0\n"
	r, err := NewReader(strings.NewReader(text))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, lastErr = r.Read(); lastErr != nil {
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF {
		t.Errorf("short sequence error = %v, want truncation", lastErr)
	}
}

func TestUnknownHeaderKeysIgnored(t *testing.T) {
	text := Magic + "\nsome_future_key: 42\nbranch_instruction_count: 0\nBT9_EDGE_SEQUENCE\n"
	r, err := NewReader(strings.NewReader(text))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read = %v, want io.EOF", err)
	}
}
