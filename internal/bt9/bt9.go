// Package bt9 implements a plain-text branch-trace format modeled on BT9,
// the format of the CBP5 framework that SBBT replaces (§IV of the MBPlib
// paper). A BT9 trace starts by describing a graph in which the nodes are
// the static branches of the program and the edges their dynamic outcomes,
// and then lists the executed sequence of edge identifiers.
//
// The format exists in this repository as the evaluation baseline: parsing
// it requires text scanning plus lookups into the (potentially large) node
// and edge tables, the costs that §VII-D identifies as the source of most
// of MBPlib's speedup. The layout is:
//
//	BT9_SPA_TRACE_FORMAT
//	total_instruction_count: <n>
//	branch_instruction_count: <n>
//	BT9_NODES
//	NODE <id> <ip-hex> <COND|UNCD> <DIR|IND> <JMP|CAL|RET>
//	BT9_EDGES
//	EDGE <id> <node-id> <T|N> <target-hex> <non-branch-instruction-count>
//	BT9_EDGE_SEQUENCE
//	<edge-id>
//	...
package bt9

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

// Magic is the first line of every trace in this format.
const Magic = "BT9_SPA_TRACE_FORMAT"

// Section markers.
const (
	nodesMark    = "BT9_NODES"
	edgesMark    = "BT9_EDGES"
	sequenceMark = "BT9_EDGE_SEQUENCE"
)

// Plausibility caps enforced while parsing, so a hostile trace cannot make
// the reader build an unbounded graph or honor an absurd header count. A
// graph of 2^26 static branches is ~50x the largest CBP-5 workload; counts
// above MaxTraceCounts (2^48 dynamic branches or instructions) likewise mark
// the trace hostile or corrupt. Violations return faults.ErrLimit.
const (
	MaxGraphNodes  = 1 << 26
	MaxGraphEdges  = 1 << 26
	MaxTraceCounts = 1 << 48
)

// Node is a static branch of the program graph.
type Node struct {
	IP     uint64
	Opcode bp.Opcode
}

// Edge is one dynamic outcome of a node: the branch was taken or not toward
// a target after executing InstrCount non-branch instructions.
type Edge struct {
	NodeID     int
	Taken      bool
	Target     uint64
	InstrCount uint64
}

// Reader streams branch events from a BT9-format trace. It implements
// bp.Reader and bp.Sizer.
type Reader struct {
	sc                *bufio.Scanner
	nodes             []Node
	edges             []Edge
	totalInstructions uint64
	totalBranches     uint64
	sawInstrCount     bool
	read              uint64
	err               error
}

// NewReader parses the header, node and edge sections of a BT9 trace and
// returns a Reader positioned at the first sequence entry.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	rd := &Reader{sc: sc}
	if err := rd.parsePreamble(); err != nil {
		return nil, err
	}
	// The instruction count is optional in this format; compare the totals
	// only when the header declared both.
	if rd.sawInstrCount && rd.totalBranches > rd.totalInstructions {
		return nil, fmt.Errorf("bt9: header declares %d branches but only %d instructions: %w", rd.totalBranches, rd.totalInstructions, faults.ErrCorrupt)
	}
	return rd, nil
}

func (r *Reader) parsePreamble() error {
	if !r.sc.Scan() {
		return fmt.Errorf("bt9: empty input: %w", bp.ErrTruncated)
	}
	if r.sc.Text() != Magic {
		return fmt.Errorf("bt9: bad magic line: %w", faults.ErrCorrupt)
	}
	section := ""
	for r.sc.Scan() {
		line := r.sc.Text()
		if line == "" {
			continue
		}
		switch line {
		case nodesMark, edgesMark:
			section = line
			continue
		case sequenceMark:
			return nil
		}
		switch {
		case section == "":
			if err := r.parseHeaderLine(line); err != nil {
				return err
			}
		case section == nodesMark:
			if err := r.parseNodeLine(line); err != nil {
				return err
			}
		case section == edgesMark:
			if err := r.parseEdgeLine(line); err != nil {
				return err
			}
		}
	}
	if err := r.sc.Err(); err != nil {
		return fmt.Errorf("bt9: scanning preamble: %w", classifyScanErr(err))
	}
	return fmt.Errorf("bt9: missing %s section: %w", sequenceMark, bp.ErrTruncated)
}

// classifyScanErr maps bufio.Scanner failures into the faults taxonomy: a
// line longer than the scanner's limit is an input trying to make the reader
// buffer without bound, so it is reported as a limit violation.
func classifyScanErr(err error) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("%w: %w", err, faults.ErrLimit)
	}
	return err
}

func (r *Reader) parseHeaderLine(line string) error {
	key, val, ok := cutField(line)
	if !ok {
		return fmt.Errorf("bt9: malformed header line %q: %w", line, faults.ErrCorrupt)
	}
	n, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bt9: header line %q: %w: %w", line, err, faults.ErrCorrupt)
	}
	switch key {
	case "total_instruction_count:", "branch_instruction_count:":
		if n > MaxTraceCounts {
			return fmt.Errorf("bt9: header line %q declares %d, limit %d: %w", line, n, uint64(MaxTraceCounts), faults.ErrLimit)
		}
		if key == "total_instruction_count:" {
			r.totalInstructions = n
			r.sawInstrCount = true
		} else {
			r.totalBranches = n
		}
	default:
		// Unknown header keys are ignored for forward compatibility.
	}
	return nil
}

// cutField splits a line at the first run of spaces.
func cutField(line string) (first, rest string, ok bool) {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' {
			j := i
			for j < len(line) && line[j] == ' ' {
				j++
			}
			return line[:i], line[j:], true
		}
	}
	return line, "", false
}

func fields(line string) []string {
	var out []string
	for line != "" {
		f, rest, ok := cutField(line)
		if f != "" {
			out = append(out, f)
		}
		if !ok {
			break
		}
		line = rest
	}
	return out
}

func (r *Reader) parseNodeLine(line string) error {
	f := fields(line)
	if len(f) != 6 || f[0] != "NODE" {
		return fmt.Errorf("bt9: malformed node line %q: %w", line, faults.ErrCorrupt)
	}
	id, err := strconv.Atoi(f[1])
	if err != nil || id != len(r.nodes) {
		return fmt.Errorf("bt9: node line %q: ids must be dense and ascending: %w", line, faults.ErrCorrupt)
	}
	if len(r.nodes) >= MaxGraphNodes {
		return fmt.Errorf("bt9: more than %d nodes: %w", MaxGraphNodes, faults.ErrLimit)
	}
	ip, err := strconv.ParseUint(f[2], 16, 64)
	if err != nil {
		return fmt.Errorf("bt9: node line %q: %w: %w", line, err, faults.ErrCorrupt)
	}
	var cond, ind bool
	switch f[3] {
	case "COND":
		cond = true
	case "UNCD":
	default:
		return fmt.Errorf("bt9: node line %q: bad conditionality %q: %w", line, f[3], faults.ErrCorrupt)
	}
	switch f[4] {
	case "IND":
		ind = true
	case "DIR":
	default:
		return fmt.Errorf("bt9: node line %q: bad directness %q: %w", line, f[4], faults.ErrCorrupt)
	}
	var base bp.BaseType
	switch f[5] {
	case "JMP":
		base = bp.Jump
	case "CAL":
		base = bp.Call
	case "RET":
		base = bp.Ret
	default:
		return fmt.Errorf("bt9: node line %q: bad base type %q: %w", line, f[5], faults.ErrCorrupt)
	}
	r.nodes = append(r.nodes, Node{IP: ip, Opcode: bp.NewOpcode(base, cond, ind)})
	return nil
}

func (r *Reader) parseEdgeLine(line string) error {
	f := fields(line)
	if len(f) != 6 || f[0] != "EDGE" {
		return fmt.Errorf("bt9: malformed edge line %q: %w", line, faults.ErrCorrupt)
	}
	id, err := strconv.Atoi(f[1])
	if err != nil || id != len(r.edges) {
		return fmt.Errorf("bt9: edge line %q: ids must be dense and ascending: %w", line, faults.ErrCorrupt)
	}
	if len(r.edges) >= MaxGraphEdges {
		return fmt.Errorf("bt9: more than %d edges: %w", MaxGraphEdges, faults.ErrLimit)
	}
	nodeID, err := strconv.Atoi(f[2])
	if err != nil || nodeID < 0 || nodeID >= len(r.nodes) {
		return fmt.Errorf("bt9: edge line %q: bad node id: %w", line, faults.ErrCorrupt)
	}
	var taken bool
	switch f[3] {
	case "T":
		taken = true
	case "N":
	default:
		return fmt.Errorf("bt9: edge line %q: bad outcome %q: %w", line, f[3], faults.ErrCorrupt)
	}
	target, err := strconv.ParseUint(f[4], 16, 64)
	if err != nil {
		return fmt.Errorf("bt9: edge line %q: %w: %w", line, err, faults.ErrCorrupt)
	}
	count, err := strconv.ParseUint(f[5], 10, 64)
	if err != nil {
		return fmt.Errorf("bt9: edge line %q: %w: %w", line, err, faults.ErrCorrupt)
	}
	// Enforce the SBBT validity rules (§IV-C) at parse time, so a trace
	// that encodes an impossible outcome (a not-taken unconditional branch,
	// or a not-taken conditional indirect branch with a target) is rejected
	// here instead of flowing into the simulator.
	branch := bp.Branch{IP: r.nodes[nodeID].IP, Target: target, Opcode: r.nodes[nodeID].Opcode, Taken: taken}
	if err := branch.Validate(); err != nil {
		return fmt.Errorf("bt9: edge line %q: %w: %w", line, err, faults.ErrCorrupt)
	}
	r.edges = append(r.edges, Edge{NodeID: nodeID, Taken: taken, Target: target, InstrCount: count})
	return nil
}

// TotalInstructions implements bp.Sizer.
func (r *Reader) TotalInstructions() uint64 { return r.totalInstructions }

// TotalBranches implements bp.Sizer.
func (r *Reader) TotalBranches() uint64 { return r.totalBranches }

// NumNodes returns the number of static branches in the trace graph.
func (r *Reader) NumNodes() int { return len(r.nodes) }

// NumEdges returns the number of distinct dynamic outcomes in the graph.
func (r *Reader) NumEdges() int { return len(r.edges) }

// Read returns the next branch event of the sequence. It returns io.EOF
// after the last entry and bp.ErrTruncated if the sequence ends before the
// branch count promised by the header.
func (r *Reader) Read() (bp.Event, error) {
	if r.err != nil {
		return bp.Event{}, r.err
	}
	var ev bp.Event
	if err := r.readInto(&ev); err != nil {
		return bp.Event{}, err
	}
	return ev, nil
}

// ReadBatch implements bp.BatchReader: it decodes up to len(dst) sequence
// entries into dst without allocating per event. Errors follow the "error
// after n" contract: dst[:n] is valid even when err is non-nil, and the
// error is sticky thereafter.
func (r *Reader) ReadBatch(dst []bp.Event) (int, error) {
	n := 0
	for n < len(dst) {
		if r.err != nil {
			return n, r.err
		}
		if err := r.readInto(&dst[n]); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// readInto decodes the next sequence entry into ev. It parses the scanner's
// byte view directly, so the per-event path performs no allocation; the
// caller must have checked r.err. On failure it records the sticky error
// and returns it.
func (r *Reader) readInto(ev *bp.Event) error {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		id, ok := atoiBytes(line)
		if !ok || id >= len(r.edges) {
			r.err = fmt.Errorf("bt9: bad sequence entry %q: %w", string(line), faults.ErrCorrupt)
			return r.err
		}
		edge := &r.edges[id]
		node := &r.nodes[edge.NodeID]
		r.read++
		*ev = bp.Event{
			Branch: bp.Branch{
				IP:     node.IP,
				Target: edge.Target,
				Opcode: node.Opcode,
				Taken:  edge.Taken,
			},
			InstrsSinceLastBranch: edge.InstrCount,
		}
		return nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = fmt.Errorf("bt9: scanning sequence: %w", classifyScanErr(err))
		return r.err
	}
	if r.read < r.totalBranches {
		r.err = fmt.Errorf("bt9: sequence ends after %d of %d branches: %w", r.read, r.totalBranches, bp.ErrTruncated)
		return r.err
	}
	r.err = io.EOF
	return r.err
}

// atoiBytes parses a non-negative decimal edge identifier without
// allocating. ok is false for empty input, any non-digit (including a sign,
// which a valid identifier never carries), or a value too large to be an
// edge id — all of which the caller reports as a corrupt sequence entry,
// exactly as the strconv-based parse did.
func atoiBytes(line []byte) (id int, ok bool) {
	if len(line) == 0 {
		return 0, false
	}
	for _, c := range line {
		if c < '0' || c > '9' || id > MaxGraphEdges {
			return 0, false
		}
		id = id*10 + int(c-'0')
	}
	return id, true
}

// edgeKey identifies a distinct dynamic outcome for the writer's graph.
type edgeKey struct {
	nodeID     int
	taken      bool
	target     uint64
	instrCount uint64
}

// Writer builds a BT9 trace. Because the graph sections precede the edge
// sequence, the writer accumulates the whole trace in memory and emits it
// on Close. It implements bp.Writer.
type Writer struct {
	w        io.Writer
	nodeIDs  map[uint64]int
	nodes    []Node
	edgeIDs  map[edgeKey]int
	edges    []Edge
	sequence []int32
	instrs   uint64
	closed   bool
}

// NewWriter returns a Writer that will emit the trace to w on Close.
func NewWriter(w io.Writer) *Writer {
	return &Writer{
		w:       w,
		nodeIDs: make(map[uint64]int),
		edgeIDs: make(map[edgeKey]int),
	}
}

// Write records one event. The event graph grows as new static branches and
// outcomes appear.
func (w *Writer) Write(ev bp.Event) error {
	if w.closed {
		return errors.New("bt9: writer closed")
	}
	if err := ev.Branch.Validate(); err != nil {
		return err
	}
	nodeID, ok := w.nodeIDs[ev.Branch.IP]
	if !ok {
		nodeID = len(w.nodes)
		w.nodeIDs[ev.Branch.IP] = nodeID
		w.nodes = append(w.nodes, Node{IP: ev.Branch.IP, Opcode: ev.Branch.Opcode})
	} else if w.nodes[nodeID].Opcode != ev.Branch.Opcode {
		return fmt.Errorf("bt9: branch %#x changed opcode from %v to %v", ev.Branch.IP, w.nodes[nodeID].Opcode, ev.Branch.Opcode)
	}
	key := edgeKey{nodeID, ev.Branch.Taken, ev.Branch.Target, ev.InstrsSinceLastBranch}
	edgeID, ok := w.edgeIDs[key]
	if !ok {
		edgeID = len(w.edges)
		if edgeID > math.MaxInt32 {
			return errors.New("bt9: more distinct edges than int32 sequence ids can address")
		}
		w.edgeIDs[key] = edgeID
		w.edges = append(w.edges, Edge{NodeID: nodeID, Taken: ev.Branch.Taken, Target: ev.Branch.Target, InstrCount: ev.InstrsSinceLastBranch})
	}
	w.sequence = append(w.sequence, int32(edgeID))
	w.instrs += ev.InstrsSinceLastBranch + 1
	return nil
}

// Close emits the whole trace. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("bt9: writer closed")
	}
	w.closed = true
	bw := bufio.NewWriterSize(w.w, 1<<16)
	fmt.Fprintln(bw, Magic)
	fmt.Fprintf(bw, "total_instruction_count: %d\n", w.instrs)
	fmt.Fprintf(bw, "branch_instruction_count: %d\n", len(w.sequence))
	fmt.Fprintln(bw, nodesMark)
	for id, n := range w.nodes {
		cond, dir, base := "UNCD", "DIR", "JMP"
		if n.Opcode.IsConditional() {
			cond = "COND"
		}
		if n.Opcode.IsIndirect() {
			dir = "IND"
		}
		switch n.Opcode.Base() {
		case bp.Call:
			base = "CAL"
		case bp.Ret:
			base = "RET"
		}
		fmt.Fprintf(bw, "NODE %d %x %s %s %s\n", id, n.IP, cond, dir, base)
	}
	fmt.Fprintln(bw, edgesMark)
	for id, e := range w.edges {
		outcome := "N"
		if e.Taken {
			outcome = "T"
		}
		fmt.Fprintf(bw, "EDGE %d %d %s %x %d\n", id, e.NodeID, outcome, e.Target, e.InstrCount)
	}
	fmt.Fprintln(bw, sequenceMark)
	var itoa [20]byte
	for _, id := range w.sequence {
		buf := strconv.AppendInt(itoa[:0], int64(id), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("bt9: writing sequence: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("bt9: flushing: %w", err)
	}
	return nil
}

// Stats summarises a writer's graph, mirroring the statistics the BT9
// header carries in the original format.
type Stats struct {
	Nodes, Edges, Sequence int
	TotalInstructions      uint64
	HottestNodeIP          uint64
}

// Stats reports graph statistics for the events written so far.
func (w *Writer) Stats() Stats {
	s := Stats{Nodes: len(w.nodes), Edges: len(w.edges), Sequence: len(w.sequence), TotalInstructions: w.instrs}
	counts := make(map[int]int)
	for _, e := range w.sequence {
		counts[w.edges[e].NodeID]++
	}
	type nc struct {
		id, n int
	}
	var all []nc
	for id, n := range counts {
		all = append(all, nc{id, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	if len(all) > 0 {
		s.HottestNodeIP = w.nodes[all[0].id].IP
	}
	return s
}
