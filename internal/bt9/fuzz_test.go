package bt9

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"mbplib/internal/faults"
)

// FuzzBT9RoundTrip drives the parser from two directions. Structured seeds
// derived from event streams must round-trip exactly through Writer and
// Reader. The raw fuzz payload itself is then fed straight to the parser,
// which must either decode it or fail with an error classified by the
// faults taxonomy — never panic and never allocate proportionally to a
// header-declared count.
func FuzzBT9RoundTrip(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(1))
	f.Add(uint16(257))
	f.Add(uint16(5000))

	// Text-shaped seeds to steer the fuzzer toward the grammar.
	textSeeds := []string{
		"",
		Magic,
		Magic + "\ntotal_instruction_count: 10\nbranch_instruction_count: 2\n",
		Magic + "\nBT9_NODES\nNODE 0 400000 COND DIR JMP\nBT9_EDGES\nEDGE 0 0 T 500000 3\nBT9_EDGE_SEQUENCE\n0\n0\n",
		Magic + "\nbranch_instruction_count: 99999999999999999999\n",
		Magic + "\nBT9_NODES\nNODE 0 400000 COND DIR JMP\nNODE 2 400004 COND DIR JMP\n",
		Magic + "\nBT9_EDGES\nEDGE 0 7 T 500000 3\nBT9_EDGE_SEQUENCE\n",
	}

	f.Fuzz(func(t *testing.T, n uint16) {
		evs := sampleEvents(int(n))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, ev := range evs {
			if err := w.Write(ev); err != nil {
				t.Fatalf("Write %d: %v", i, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		for i, want := range evs {
			got, err := r.Read()
			if err != nil {
				t.Fatalf("Read %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("event %d: got %+v, want %+v", i, got, want)
			}
		}
		if _, err := r.Read(); err != io.EOF {
			t.Fatalf("after last event, Read err = %v, want io.EOF", err)
		}

		// Hostile direction: the seed index picks a text payload, possibly
		// sliced, and the parser must fail typed or succeed — never panic.
		text := textSeeds[int(n)%len(textSeeds)]
		if cut := int(n) % (len(text) + 1); cut < len(text) {
			text = text[:cut]
		}
		exerciseParser(t, text)
	})
}

// exerciseParser runs the full reader over arbitrary text and checks the
// typed-error contract.
func exerciseParser(t *testing.T, text string) {
	t.Helper()
	r, err := NewReader(strings.NewReader(text))
	if err != nil {
		requireTyped(t, err)
		return
	}
	for {
		_, err := r.Read()
		if err == io.EOF {
			return
		}
		if err != nil {
			requireTyped(t, err)
			return
		}
	}
}

func requireTyped(t *testing.T, err error) {
	t.Helper()
	// I/O errors cannot happen on an in-memory reader, so anything outside
	// the taxonomy here is a classification bug.
	if faults.Class(err) == "other" {
		t.Fatalf("untyped parser error: %v", err)
	}
}
