package bt9

import (
	"strings"
	"testing"
)

// trace assembles a minimal BT9 preamble around the given node and edge
// lines, promising one branch so a single sequence entry completes it.
func trace(node, edge string) string {
	return strings.Join([]string{
		Magic,
		"total_instruction_count: 4",
		"branch_instruction_count: 1",
		"BT9_NODES",
		node,
		"BT9_EDGES",
		edge,
		"BT9_EDGE_SEQUENCE",
		"0",
		"",
	}, "\n")
}

// TestReaderRejectsInvalidBranches checks that the §IV-C validity rules are
// enforced while the edge table is parsed: a BT9 graph pairing a node with
// an impossible outcome fails in NewReader, before any event is produced.
func TestReaderRejectsInvalidBranches(t *testing.T) {
	cases := []struct {
		name    string
		node    string
		edge    string
		wantErr string
	}{
		{
			name:    "not-taken unconditional",
			node:    "NODE 0 4000 UNCD DIR JMP",
			edge:    "EDGE 0 0 N 0 3",
			wantErr: "marked not taken",
		},
		{
			name:    "not-taken conditional indirect with non-null target",
			node:    "NODE 0 4000 COND IND JMP",
			edge:    "EDGE 0 0 N 4040 3",
			wantErr: "non-null target",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(strings.NewReader(trace(tc.node, tc.edge)))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewReader error = %v, want one containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestReaderAcceptsValidEdgeCases is the conforming counterpart: the same
// node shapes with valid outcomes parse and play back, including the
// boundary case of a not-taken conditional indirect edge with target 0.
func TestReaderAcceptsValidEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		node string
		edge string
	}{
		{
			name: "taken unconditional",
			node: "NODE 0 4000 UNCD DIR JMP",
			edge: "EDGE 0 0 T 4040 3",
		},
		{
			name: "not-taken conditional indirect with null target",
			node: "NODE 0 4000 COND IND JMP",
			edge: "EDGE 0 0 N 0 3",
		},
		{
			name: "not-taken conditional direct keeps its target",
			node: "NODE 0 4000 COND DIR JMP",
			edge: "EDGE 0 0 N 4040 3",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(strings.NewReader(trace(tc.node, tc.edge)))
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			ev, err := r.Read()
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if ev.Branch.IP != 0x4000 || ev.InstrsSinceLastBranch != 3 {
				t.Errorf("unexpected event %+v", ev)
			}
		})
	}
}
