//go:build !race

package bt9

// raceEnabled mirrors the build's -race flag so allocation-count tests can
// skip themselves: race instrumentation adds its own allocations.
const raceEnabled = false
