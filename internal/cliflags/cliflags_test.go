package cliflags

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbplib/internal/obs"
)

func TestValidateWorkers(t *testing.T) {
	cases := []struct {
		j  int
		ok bool
	}{
		{1, true}, {8, true}, {0, false}, {-1, false}, {-100, false},
	}
	for _, c := range cases {
		err := ValidateWorkers(c.j)
		if (err == nil) != c.ok {
			t.Errorf("ValidateWorkers(%d) = %v, want ok=%v", c.j, err, c.ok)
		}
	}
}

func TestValidateCacheBytes(t *testing.T) {
	cases := []struct {
		b  int64
		ok bool
	}{
		{0, true}, {1, true}, {1 << 30, true}, {-1, false}, {-1 << 20, false},
	}
	for _, c := range cases {
		err := ValidateCacheBytes(c.b)
		if (err == nil) != c.ok {
			t.Errorf("ValidateCacheBytes(%d) = %v, want ok=%v", c.b, err, c.ok)
		}
	}
}

func TestCacheBudget(t *testing.T) {
	if got := CacheBudget(0); got != -1 {
		t.Errorf("CacheBudget(0) = %d, want -1 (disable)", got)
	}
	if got := CacheBudget(512); got != 512 {
		t.Errorf("CacheBudget(512) = %d, want 512", got)
	}
}

func TestMetricsDisabled(t *testing.T) {
	var errw bytes.Buffer
	m := NewMetrics("", false, &errw)
	if m.Collector() != nil {
		t.Error("collector enabled without -metrics or -progress")
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if errw.Len() != 0 {
		t.Errorf("disabled metrics wrote %q", errw.String())
	}
}

func TestMetricsToStderr(t *testing.T) {
	var errw bytes.Buffer
	m := NewMetrics("-", false, &errw)
	col := m.Collector()
	if col == nil {
		t.Fatal("no collector with -metrics")
	}
	col.Ctr(obs.CtrEvents).Add(7)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(errw.Bytes(), &snap); err != nil {
		t.Fatalf("metrics output is not JSON: %v\n%s", err, errw.String())
	}
	if snap.Version != obs.SnapshotVersion || snap.Counters["events"] != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestMetricsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var errw bytes.Buffer
	m := NewMetrics(path, false, &errw)
	m.Collector().Ctr(obs.CtrCellsDone).Add(3)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics file: %v", err)
	}
	if !strings.Contains(string(data), `"cells_done": 3`) {
		t.Errorf("metrics file missing counters:\n%s", data)
	}
	if errw.Len() != 0 {
		t.Errorf("file-destined metrics leaked to stderr: %q", errw.String())
	}
}

func TestMetricsProgressLine(t *testing.T) {
	var errw bytes.Buffer
	m := NewMetrics("", true, &errw)
	if m.Collector() == nil {
		t.Fatal("no collector with -progress")
	}
	m.Collector().Ctr(obs.CtrCellsTotal).Store(2)
	m.Collector().Ctr(obs.CtrCellsDone).Add(2)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(errw.String(), "2/2 cells") {
		t.Errorf("no final progress line: %q", errw.String())
	}
}

func TestValidateVetOutput(t *testing.T) {
	cases := []struct {
		json, sarif bool
		ok          bool
	}{
		{false, false, true}, {true, false, true}, {false, true, true}, {true, true, false},
	}
	for _, c := range cases {
		err := ValidateVetOutput(c.json, c.sarif)
		if (err == nil) != c.ok {
			t.Errorf("ValidateVetOutput(%v, %v) = %v, want ok=%v", c.json, c.sarif, err, c.ok)
		}
	}
}

func TestSplitVetRules(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"purity", []string{"purity"}},
		{"v6,v7", []string{"v6", "v7"}},
		{" goroutine , atomic ", []string{"goroutine", "atomic"}},
		{"a,,b,", []string{"a", "b"}},
	}
	for _, c := range cases {
		got := SplitVetRules(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitVetRules(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitVetRules(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}
