// Package cliflags holds the flag validation and observability plumbing
// shared by the mbp* commands, so every command rejects the same bad inputs
// with the same messages and emits the same metrics JSON.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mbplib/internal/obs"
)

// FlagWasSet reports whether a flag was given explicitly on the command
// line (flag.Visit only walks set flags). ValidateResumeOptions needs the
// distinction: an explicit -checkpoint-every without -resume is a usage
// error, the default value is not.
func FlagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// Check is one named flag validation: the flag it covers and the error it
// found (nil when the value is fine). Checks are built eagerly by the
// constructors below and evaluated by Validate, so every CLI states its
// whole validation table in one expression instead of accreting ad-hoc if
// blocks — the drift that let commands validate the same flag at different
// times (or not at all) before the table existed.
type Check struct {
	Flag string
	Err  error
}

// Validate runs a validation table and returns the first failure. All
// checks are value checks with no side effects, so a command can (and
// should) run its full table before any file, profile or journal is opened.
func Validate(checks ...Check) error {
	for _, c := range checks {
		if c.Err != nil {
			return c.Err
		}
	}
	return nil
}

// Workers is the table form of ValidateWorkers (-j).
func Workers(j int) Check { return Check{"-j", ValidateWorkers(j)} }

// CacheBytes is the table form of ValidateCacheBytes (-cache-bytes).
func CacheBytes(b int64) Check { return Check{"-cache-bytes", ValidateCacheBytes(b)} }

// DecodeWorkers is the table form of ValidateDecodeWorkers (-decode-j).
func DecodeWorkers(j int) Check { return Check{"-decode-j", ValidateDecodeWorkers(j)} }

// CellTimeout is the table form of ValidateCellTimeout (-cell-timeout).
func CellTimeout(d time.Duration) Check { return Check{"-cell-timeout", ValidateCellTimeout(d)} }

// ResumeOptions is the table form of ValidateResumeOptions
// (-resume/-checkpoint-every).
func ResumeOptions(resume string, checkpointEverySet bool) Check {
	return Check{"-checkpoint-every", ValidateResumeOptions(resume, checkpointEverySet)}
}

// Retries is the table form of ValidateRetries (-retries).
func Retries(n int) Check { return Check{"-retries", ValidateRetries(n)} }

// PolicyName is the table form of ValidatePolicyName (-policy).
func PolicyName(name string) Check { return Check{"-policy", ValidatePolicyName(name)} }

// Listen is the table form of ValidateListen (-listen).
func Listen(addr string) Check { return Check{"-listen", ValidateListen(addr)} }

// DataDir is the table form of ValidateDataDir (-data-dir).
func DataDir(dir string) Check { return Check{"-data-dir", ValidateDataDir(dir)} }

// QueueDepth is the table form of ValidateQueueDepth (-queue).
func QueueDepth(n int) Check { return Check{"-queue", ValidateQueueDepth(n)} }

// SnapshotEvery is the table form of ValidateSnapshotEvery (-snapshot-every).
func SnapshotEvery(d time.Duration) Check { return Check{"-snapshot-every", ValidateSnapshotEvery(d)} }

// ValidateRetries rejects negative -retries values. Historically mbprun
// checked this inside its policy parser while mbpsweep checked it inline
// after parsing the policy (and after starting profiles) — the same rule,
// enforced at two different times. The table validator runs it before any
// side effect on every CLI.
func ValidateRetries(n int) error {
	if n < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", n)
	}
	return nil
}

// ValidatePolicyName rejects unknown -policy names before any trace opens.
func ValidatePolicyName(name string) error {
	switch name {
	case "failfast", "skip":
		return nil
	}
	return fmt.Errorf("unknown -policy %q (want failfast or skip)", name)
}

// ValidateListen rejects malformed -listen addresses: the value must be a
// host:port pair with a numeric port (port 0 asks the kernel for a random
// free port, which the daemon reports via its address file).
func ValidateListen(addr string) error {
	if addr == "" {
		return fmt.Errorf("-listen is required")
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-listen %q is not a host:port address: %v", addr, err)
	}
	_ = host // an empty host means every interface, which is valid
	if _, err := strconv.ParseUint(port, 10, 16); err != nil {
		return fmt.Errorf("-listen %q has a non-numeric port %q", addr, port)
	}
	return nil
}

// ValidateDataDir rejects an empty -data-dir: the daemon's jobs, journals
// and address file all live under it, so there is no sensible default to
// scribble into.
func ValidateDataDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	return nil
}

// ValidateQueueDepth rejects non-positive -queue bounds: a daemon with no
// queue capacity could never accept a job.
func ValidateQueueDepth(n int) error {
	if n < 1 {
		return fmt.Errorf("-queue must be >= 1 (got %d)", n)
	}
	return nil
}

// ValidateSnapshotEvery rejects non-positive -snapshot-every intervals,
// which would spin the SSE progress loop.
func ValidateSnapshotEvery(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-snapshot-every must be > 0 (got %v)", d)
	}
	return nil
}

// ValidateWorkers rejects non-positive -j values. Commands used to clamp
// them silently; an explicit -j 0 or -j -4 is now a usage error, caught
// before any trace is opened.
func ValidateWorkers(j int) error {
	if j < 1 {
		return fmt.Errorf("-j must be >= 1 (got %d)", j)
	}
	return nil
}

// ValidateDecodeWorkers rejects non-positive -decode-j values. 1 is the
// sequential decode path; higher values decode chunked (MLZS) traces on a
// worker pool with byte-identical output.
func ValidateDecodeWorkers(j int) error {
	if j < 1 {
		return fmt.Errorf("-decode-j must be >= 1 (got %d)", j)
	}
	return nil
}

// ValidateCacheBytes rejects negative -cache-bytes values. 0 disables the
// decoded-trace cache (every simulation streams); positive values bound it.
func ValidateCacheBytes(b int64) error {
	if b < 0 {
		return fmt.Errorf("-cache-bytes must be >= 0 (got %d; use 0 to disable the cache)", b)
	}
	return nil
}

// CacheBudget translates the CLI's -cache-bytes convention (0 = disabled)
// into the library's (tracecache.New treats <= 0 as disabled, but
// sim.ParallelOptions treats 0 as "use default"), after validation.
func CacheBudget(b int64) int64 {
	if b == 0 {
		return -1 // explicit disable for sim.ParallelOptions
	}
	return b
}

// DefaultCheckpointEvery is the default -checkpoint-every interval: events
// between in-flight cell checkpoints when a resume journal is active. A
// checkpoint encodes and fsyncs the full predictor state plus per-branch
// statistics (hundreds of KB at default table sizes), so the interval must
// be large enough that this amortizes below a few percent of cell time —
// 16M events keeps it there for every bundled predictor while bounding the
// work a SIGKILL can lose to seconds of re-simulation.
const DefaultCheckpointEvery = 1 << 24

// ValidateCellTimeout rejects negative -cell-timeout values. 0 disables the
// per-cell deadline.
func ValidateCellTimeout(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-cell-timeout must be >= 0 (got %v; use 0 for no deadline)", d)
	}
	return nil
}

// ValidateResumeOptions rejects flag combinations the resumable-sweep
// machinery cannot honour: -checkpoint-every snapshots go to the journal, so
// asking for them without -resume would silently drop every checkpoint.
func ValidateResumeOptions(resume string, checkpointEverySet bool) error {
	if resume == "" && checkpointEverySet {
		return fmt.Errorf("-checkpoint-every requires -resume (checkpoints are written to the resume journal)")
	}
	return nil
}

// DrainOnSignal arms the graceful-drain contract shared by the mbp*
// commands: the first SIGINT/SIGTERM closes the returned channel — the
// scheduler stops admitting cells, checkpoints in-flight work when
// journalling, and the command exits with the drained code — and a second
// signal aborts the process immediately. The returned stop function releases
// the signal handler; call it once the run has completed normally.
func DrainOnSignal(name string, errw io.Writer) (<-chan struct{}, func()) {
	drain := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigs
		if !ok {
			return
		}
		fmt.Fprintf(errw, "%s: %v: draining — finishing in-flight work, signal again to abort\n", name, sig)
		close(drain)
		if sig, ok = <-sigs; ok {
			fmt.Fprintf(errw, "%s: %v: aborting\n", name, sig)
			os.Exit(130)
		}
	}()
	return drain, func() {
		signal.Stop(sigs)
		close(sigs)
	}
}

// Metrics is the state behind a command's -metrics and -progress flags:
// an optional collector and where to serialise its final snapshot.
type Metrics struct {
	col  *obs.Collector
	dest string
	errw io.Writer
	stop func()
}

// NewMetrics builds the metrics state for one command invocation.
// metricsDest is the -metrics flag value: "" leaves collection disabled,
// "-" writes the snapshot to errw (conventionally stderr, keeping stdout
// byte-identical to an uninstrumented run), anything else is a file path.
// When progress is set, a live status line refreshes on errw until Close.
func NewMetrics(metricsDest string, progress bool, errw io.Writer) *Metrics {
	m := &Metrics{dest: metricsDest, errw: errw, stop: func() {}}
	if metricsDest != "" || progress {
		m.col = obs.New()
	}
	if progress {
		m.stop = obs.StartProgress(errw, m.col, 0)
	}
	return m
}

// Collector returns the collector to thread through the pipeline — nil when
// neither -metrics nor -progress was given, which disables collection at
// zero cost.
func (m *Metrics) Collector() *obs.Collector { return m.col }

// Close stops the progress line and writes the final metrics snapshot to
// the -metrics destination. Call exactly once, after the results have been
// rendered. Returns an error only for metrics-file I/O failures.
func (m *Metrics) Close() error {
	m.stop()
	if m.dest == "" || m.col == nil {
		return nil
	}
	data, err := json.MarshalIndent(m.col.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("encoding metrics: %w", err)
	}
	data = append(data, '\n')
	if m.dest == "-" {
		_, err = m.errw.Write(data)
		return err
	}
	if err := os.WriteFile(m.dest, data, 0o644); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	return nil
}

// ValidateVetOutput rejects contradictory mbpvet output selections: -json
// and -sarif both claim stdout, so asking for both is a usage error rather
// than a silent preference.
func ValidateVetOutput(jsonOut, sarifOut bool) error {
	if jsonOut && sarifOut {
		return fmt.Errorf("-json and -sarif are mutually exclusive (both write the findings document to stdout)")
	}
	return nil
}

// SplitVetRules splits a -rules value ("purity,goroutine" or "v1,v6") into
// its entries, trimming whitespace and dropping empties. Validation of the
// names themselves happens in the vet package, which owns the catalogue;
// an unknown name surfaces as a usage error (exit 2).
func SplitVetRules(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
