// Package faults is the shared fault taxonomy of the trace-processing
// stack. Every reader in the suite — sbbt, bt9, compress, and the cycle
// trace — classifies its failures into one of four errors.Is-able classes,
// so that a caller scoring a predictor over hundreds of traces (§II of the
// MBPlib paper) can tell "this trace is bad" apart from "this code is bad"
// and decide whether to skip, retry, or abort:
//
//	ErrCorrupt        the bytes are present but violate the format
//	ErrTruncated      the input ends before the format says it may
//	ErrLimit          a header declares implausible sizes; refusing to
//	                  honor it bounds allocations on hostile inputs
//	ErrPredictorPanic a predictor (or other user callback) panicked and
//	                  the simulator converted the panic to an error
//	ErrDeadline       a sweep cell exceeded its configured wall-clock
//	                  budget (-cell-timeout) and was abandoned
//	ErrDrained        a sweep was asked to stop (SIGINT/SIGTERM drain)
//	                  before this cell finished; the work is resumable
//
// The package also provides the fault-injection harness (Injector,
// ShortReads) used by the corruption sweep tests: deterministic bit-flips,
// truncations, garbage writes and short reads layered over any io.Reader.
//
// faults is a leaf package (stdlib only) so that bp, the codecs, the
// simulator and the CLIs can all share it without cycles.
package faults

import (
	"errors"
	"fmt"
	"io/fs"
)

// The four fault classes. Readers wrap these with fmt.Errorf("...: %w", ...)
// so position detail survives while errors.Is still classifies.
var (
	// ErrCorrupt reports bytes that violate the trace or container format.
	ErrCorrupt = errors.New("corrupt input")
	// ErrTruncated reports input that ends mid-record or before the count
	// promised by its header.
	ErrTruncated = errors.New("truncated input")
	// ErrLimit reports a header whose declared sizes exceed the format's
	// plausibility caps. Enforcing it keeps a hostile 100-byte file from
	// requesting gigabytes of allocation.
	ErrLimit = errors.New("declared size exceeds format limit")
	// ErrPredictorPanic reports a panic recovered inside the simulator's
	// per-trace unit of work.
	ErrPredictorPanic = errors.New("predictor panicked")
	// ErrDeadline reports a sweep cell that ran past its configured
	// wall-clock deadline. It is permanent by classification: retrying the
	// same cell under the same budget would time out again.
	ErrDeadline = errors.New("cell deadline exceeded")
	// ErrDrained reports work abandoned because the sweep was draining
	// (graceful shutdown on SIGINT/SIGTERM). Unlike the other classes it
	// does not indict the trace or the code: the cell is resumable.
	ErrDrained = errors.New("sweep drained")
)

// PanicError carries a recovered panic value and the goroutine stack that
// raised it. It wraps ErrPredictorPanic, so errors.Is(err,
// faults.ErrPredictorPanic) classifies it, and errors.As recovers the stack.
type PanicError struct {
	Value any
	Stack []byte
}

// NewPanicError wraps a recovered value and its captured stack.
func NewPanicError(value any, stack []byte) *PanicError {
	return &PanicError{Value: value, Stack: stack}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("predictor panicked: %v", e.Value)
}

// Unwrap makes the error classifiable as ErrPredictorPanic.
func (e *PanicError) Unwrap() error { return ErrPredictorPanic }

// Class names the fault class of err for failure tables and JSON output:
// "corrupt", "truncated", "limit", "panic", "deadline", "drained", or
// "other" for errors outside the taxonomy (I/O failures, usage errors).
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrPredictorPanic):
		return "panic"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	case errors.Is(err, ErrTruncated):
		return "truncated"
	case errors.Is(err, ErrLimit):
		return "limit"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrDrained):
		return "drained"
	}
	return "other"
}

// Permanent reports whether retrying the operation that produced err could
// possibly succeed. Classified trace faults are permanent — the bytes will
// not improve — as are missing files; anything else (an EMFILE, a network
// filesystem hiccup) is considered transient and worth a capped retry.
func Permanent(err error) bool {
	return Class(err) != "other" || errors.Is(err, fs.ErrNotExist)
}
