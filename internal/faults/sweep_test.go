// The corruption sweep: the acceptance test of the fault-tolerance layer.
// For seed traces in every format the suite reads, it injects a truncation
// at every byte offset and a bit-flip in every byte and requires the reader
// to fail with an error classified by the faults taxonomy — never panic,
// never hang, never succeed silently where the format guarantees detection.
//
// Detection strength differs by format and the assertions encode that:
//
//   - Checksummed SBBT detects every single-bit flip and every truncation.
//   - BT9 is plain text with no integrity data: a flipped hex digit in an
//     address yields a different but valid trace, so flips assert "typed
//     error or clean success"; truncations must all fail except cuts into
//     the final line's trailing bytes, which can leave a complete sequence.
//   - MLZ-compressed checksummed SBBT: a flip can land in bits the decoder
//     never lets reach the consumer (Huffman padding, the frame terminator
//     the trace reader stops short of), so the contract is "typed error, or
//     success with a byte-identical event stream" — silent corruption of
//     consumed data is impossible either way.
package faults_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/bt9"
	"mbplib/internal/compress"
	"mbplib/internal/faults"
	"mbplib/internal/sbbt"
)

// seedEvents builds a deterministic event stream that exercises several
// opcodes and gap values.
func seedEvents(n int) []bp.Event {
	evs := make([]bp.Event, n)
	for i := range evs {
		op, taken, target := bp.OpCondJump, i%3 != 0, uint64(0x500000+(i%29)*16)
		switch i % 7 {
		case 5:
			op, taken = bp.OpCall, true
		case 6:
			op, taken, target = bp.OpRet, true, uint64(0x600000+(i%11)*8)
		}
		evs[i] = bp.Event{
			Branch:                bp.Branch{IP: 0x400000 + uint64(i%43)*4 + uint64(op)<<20, Target: target, Opcode: op, Taken: taken},
			InstrsSinceLastBranch: uint64(i % 9),
		}
	}
	return evs
}

func eventTotals(evs []bp.Event) (instrs, branches uint64) {
	for _, ev := range evs {
		instrs += ev.InstrsSinceLastBranch + 1
	}
	return instrs, uint64(len(evs))
}

func seedSBBT(t *testing.T, evs []bp.Event) []byte {
	t.Helper()
	instrs, branches := eventTotals(evs)
	var buf bytes.Buffer
	w, err := sbbt.NewChecksumWriter(&buf, instrs, branches)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func seedBT9(t *testing.T, evs []bp.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bt9.NewWriter(&buf)
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain opens r with open and consumes events until EOF or error, with a
// hard cap that turns any reader loop bug into a test failure instead of a
// hang.
func drain(t *testing.T, r io.Reader, open func(io.Reader) (bp.Reader, error), cap int) error {
	t.Helper()
	br, err := open(r)
	if err != nil {
		return err
	}
	for i := 0; ; i++ {
		if i > cap {
			t.Fatalf("reader did not terminate after %d events", cap)
		}
		if _, err := br.Read(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func openSBBT(r io.Reader) (bp.Reader, error) { return sbbt.NewReader(r) }
func openBT9(r io.Reader) (bp.Reader, error)  { return bt9.NewReader(r) }

// openMLZ stacks the auto-detecting decompressor under the SBBT reader, the
// way simulators open distributed traces.
func openMLZ(r io.Reader) (bp.Reader, error) {
	dr, err := compress.NewReader(r)
	if err != nil {
		return nil, err
	}
	return sbbt.NewReader(dr)
}

// requireTyped fails unless err is classified by the taxonomy.
func requireTyped(t *testing.T, context string, err error) {
	t.Helper()
	if faults.Class(err) == "other" {
		t.Fatalf("%s: untyped error: %v", context, err)
	}
}

func TestSweepSBBTTruncation(t *testing.T) {
	evs := seedEvents(300)
	data := seedSBBT(t, evs)
	for off := 0; off < len(data); off++ {
		err := drain(t, faults.NewInjector(bytes.NewReader(data), faults.Truncate(int64(off))), openSBBT, 2*len(evs))
		if err == nil {
			t.Fatalf("truncation at %d not detected", off)
		}
		requireTyped(t, "truncation", err)
	}
}

func TestSweepSBBTBitFlips(t *testing.T) {
	evs := seedEvents(300)
	data := seedSBBT(t, evs)
	for off := 0; off < len(data); off++ {
		for bit := uint8(0); bit < 8; bit++ {
			err := drain(t, faults.NewInjector(bytes.NewReader(data), faults.BitFlip(int64(off), bit)), openSBBT, 2*len(evs))
			if err == nil {
				t.Fatalf("bit flip at %d.%d not detected", off, bit)
			}
			requireTyped(t, "bit flip", err)
		}
	}
}

func TestSweepSBBTGarbage(t *testing.T) {
	evs := seedEvents(300)
	data := seedSBBT(t, evs)
	for off := 0; off < len(data); off += 13 {
		err := drain(t, faults.NewInjector(bytes.NewReader(data), faults.Garbage(int64(off), 16, uint64(off))), openSBBT, 2*len(evs))
		if err == nil {
			// Garbage may reproduce the original bytes; verify it did.
			var out bytes.Buffer
			io.Copy(&out, faults.NewInjector(bytes.NewReader(data), faults.Garbage(int64(off), 16, uint64(off)))) //nolint:errcheck
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatalf("garbage at %d changed bytes but was not detected", off)
			}
			continue
		}
		requireTyped(t, "garbage", err)
	}
}

func TestSweepBT9Truncation(t *testing.T) {
	evs := seedEvents(200)
	data := seedBT9(t, evs)
	// Cuts into the final line's bytes can leave a complete, count-matching
	// sequence: a text format cannot detect the loss of trailing bytes.
	lastLine := bytes.LastIndexByte(bytes.TrimRight(data, "\n"), '\n') + 1
	successes := 0
	for off := 0; off < len(data); off++ {
		err := drain(t, faults.NewInjector(bytes.NewReader(data), faults.Truncate(int64(off))), openBT9, 2*len(evs))
		if err == nil {
			if off <= lastLine {
				t.Fatalf("truncation at %d (before final line at %d) not detected", off, lastLine)
			}
			successes++
			continue
		}
		requireTyped(t, "truncation", err)
	}
	if tail := len(data) - lastLine; successes > tail {
		t.Errorf("%d undetected truncations, more than the %d-byte final line", successes, tail)
	}
}

func TestSweepBT9BitFlips(t *testing.T) {
	evs := seedEvents(200)
	data := seedBT9(t, evs)
	for off := 0; off < len(data); off++ {
		err := drain(t, faults.NewInjector(bytes.NewReader(data), faults.BitFlip(int64(off), uint8(off%8))), openBT9, 4*len(evs))
		if err != nil {
			// Text flips may land in ignorable positions (an address digit);
			// when they do error, the error must be typed.
			requireTyped(t, "bit flip", err)
		}
	}
}

func compressMLZ(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := compress.NewMLZWriter(&buf, compress.LevelBest)
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainVerify is drain plus an exactness check on clean EOF: a checksummed
// stream may deliver corrupted events before the chunk trailer that exposes
// them (detection is per chunk, like gzip's per-stream CRC), but if the
// reader reaches clean EOF every checksum passed, so the event stream must
// equal want — a "success" can never hide corruption.
func drainVerify(t *testing.T, r io.Reader, open func(io.Reader) (bp.Reader, error), want []bp.Event) error {
	t.Helper()
	br, err := open(r)
	if err != nil {
		return err
	}
	mismatch := -1
	for i := 0; ; i++ {
		if i > 2*len(want) {
			t.Fatalf("reader did not terminate after %d events", 2*len(want))
		}
		ev, err := br.Read()
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("clean EOF after %d of %d events", i, len(want))
			}
			if mismatch >= 0 {
				t.Fatalf("event %d silently corrupted, stream ended cleanly", mismatch)
			}
			return nil
		}
		if err != nil {
			return err
		}
		if mismatch < 0 && (i >= len(want) || ev != want[i]) {
			mismatch = i
		}
	}
}

func TestSweepMLZTruncation(t *testing.T) {
	evs := seedEvents(300)
	data := compressMLZ(t, seedSBBT(t, evs))
	for off := 0; off < len(data); off++ {
		err := drainVerify(t, faults.NewInjector(bytes.NewReader(data), faults.Truncate(int64(off))), openMLZ, evs)
		if err == nil {
			continue // cut past everything the consumer reads; stream intact
		}
		requireTyped(t, "truncation", err)
	}
}

func TestSweepMLZBitFlips(t *testing.T) {
	evs := seedEvents(300)
	data := compressMLZ(t, seedSBBT(t, evs))
	for off := 0; off < len(data); off++ {
		for bit := uint8(0); bit < 8; bit++ {
			err := drainVerify(t, faults.NewInjector(bytes.NewReader(data), faults.BitFlip(int64(off), bit)), openMLZ, evs)
			if err == nil {
				continue // flip in dont-care bits; stream verified intact
			}
			requireTyped(t, "bit flip", err)
		}
	}
}

func compressMLZS(t *testing.T, raw []byte, chunkSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := compress.NewMLZSWriter(&buf, compress.MLZSOptions{ChunkSize: chunkSize, Level: compress.LevelBest})
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openMLZS stacks the auto-detecting decompressor (which recognises the
// chunked container) under the SBBT reader.
func openMLZS(r io.Reader) (bp.Reader, error) { return openMLZ(r) }

// TestSweepMLZSTruncation cuts the chunked container at every byte offset:
// header, chunk frames, payloads, CRCs, index trailer and footer. The
// streaming reader stops at the end tag, so cuts confined to the trailer are
// invisible to it — the contract is "typed error, or verified-intact stream".
func TestSweepMLZSTruncation(t *testing.T) {
	evs := seedEvents(300)
	data := compressMLZS(t, seedSBBT(t, evs), 512)
	for off := 0; off < len(data); off++ {
		err := drainVerify(t, faults.NewInjector(bytes.NewReader(data), faults.Truncate(int64(off))), openMLZS, evs)
		if err == nil {
			continue // cut past everything the consumer reads; stream intact
		}
		requireTyped(t, "truncation", err)
	}
}

// TestSweepMLZSBitFlips flips every bit of every byte of the container.
// Per-chunk CRC-32C catches any payload or frame damage the decoder would
// otherwise propagate; trailer flips are unread by the streaming path.
func TestSweepMLZSBitFlips(t *testing.T) {
	evs := seedEvents(300)
	data := compressMLZS(t, seedSBBT(t, evs), 512)
	for off := 0; off < len(data); off++ {
		for bit := uint8(0); bit < 8; bit++ {
			err := drainVerify(t, faults.NewInjector(bytes.NewReader(data), faults.BitFlip(int64(off), bit)), openMLZS, evs)
			if err == nil {
				continue // flip in dont-care bits; stream verified intact
			}
			requireTyped(t, "bit flip", err)
		}
	}
}

// TestSweepMLZSChunkIsolation is the chunk-granular half of the MLZS sweep:
// for every single-byte flip, the random-access path (index + chunk decoder)
// must either reject the index with a typed error or confine the damage —
// every chunk whose decode succeeds must decode to exactly its original
// bytes, and at most the damaged region's chunk may fail (with a typed
// error). This is the property the chunk-granular tracecache relies on: a
// corrupt chunk poisons only itself.
func TestSweepMLZSChunkIsolation(t *testing.T) {
	raw := seedSBBT(t, seedEvents(300))
	data := compressMLZS(t, raw, 512)
	ix, err := compress.ReadMLZSIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		mix, err := compress.ReadMLZSIndex(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			requireTyped(t, "index", err)
			continue
		}
		dec := compress.NewMLZSChunkDecoder(bytes.NewReader(mut), mix)
		failed := 0
		for i := 0; i < mix.NumChunks(); i++ {
			chunk, derr := dec.Decode(i)
			if derr != nil {
				requireTyped(t, "chunk decode", derr)
				failed++
				continue
			}
			if i < ix.NumChunks() {
				c := ix.Chunks[i]
				if int64(len(chunk)) == c.RawLen && !bytes.Equal(chunk, raw[c.RawOff:c.RawOff+c.RawLen]) {
					t.Fatalf("flip at %d: chunk %d decoded successfully to wrong bytes", off, i)
				}
			}
		}
		if failed > 1 {
			t.Fatalf("flip at %d: %d chunks failed, damage not confined to one chunk", off, failed)
		}
	}
}

// TestSweepHostileHeaders: implausible header-declared sizes are rejected
// with ErrLimit before the reader allocates for them.
func TestSweepHostileHeaders(t *testing.T) {
	huge := sbbt.NewHeader(1<<60, 1<<55).AppendTo(nil)
	if _, err := sbbt.NewReader(bytes.NewReader(huge)); !errors.Is(err, faults.ErrLimit) {
		t.Errorf("sbbt oversized count: %v, want ErrLimit", err)
	}

	text := bt9.Magic + "\nbranch_instruction_count: 99999999999999999\n"
	if _, err := bt9.NewReader(bytes.NewReader([]byte(text))); !errors.Is(err, faults.ErrLimit) {
		t.Errorf("bt9 oversized count: %v, want ErrLimit", err)
	}
}

// TestSweepShortReads: every reader must produce identical events under any
// read fragmentation.
func TestSweepShortReads(t *testing.T) {
	evs := seedEvents(500)
	for _, tc := range []struct {
		name string
		data []byte
		open func(io.Reader) (bp.Reader, error)
	}{
		{"sbbt", seedSBBT(t, evs), openSBBT},
		{"bt9", seedBT9(t, evs), openBT9},
		{"mlz", compressMLZ(t, seedSBBT(t, evs)), openMLZ},
		{"mlzs", compressMLZS(t, seedSBBT(t, evs), 512), openMLZS},
	} {
		r, err := tc.open(faults.ShortReads(bytes.NewReader(tc.data), 3))
		if err != nil {
			t.Fatalf("%s: open: %v", tc.name, err)
		}
		for i, want := range evs {
			got, err := r.Read()
			if err != nil {
				t.Fatalf("%s: Read %d: %v", tc.name, i, err)
			}
			if got != want {
				t.Fatalf("%s: event %d mismatch under short reads", tc.name, i)
			}
		}
		if _, err := r.Read(); err != io.EOF {
			t.Fatalf("%s: tail err = %v, want io.EOF", tc.name, err)
		}
	}
}
