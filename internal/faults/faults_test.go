package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrCorrupt, "corrupt"},
		{ErrTruncated, "truncated"},
		{ErrLimit, "limit"},
		{ErrPredictorPanic, "panic"},
		{fmt.Errorf("sbbt: bad signature: %w", ErrCorrupt), "corrupt"},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrTruncated)), "truncated"},
		{NewPanicError("boom", []byte("stack")), "panic"},
		{ErrDeadline, "deadline"},
		{ErrDrained, "drained"},
		{fmt.Errorf("cell gshare/trace0: %w", ErrDeadline), "deadline"},
		{fmt.Errorf("cell gshare/trace0: %w", ErrDrained), "drained"},
		{errors.New("something else"), "other"},
		{io.EOF, "other"},
	}
	for _, c := range cases {
		if got := Class(c.err); got != c.want {
			t.Errorf("Class(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestPanicError(t *testing.T) {
	err := NewPanicError(42, []byte("goroutine 1 [running]"))
	if !errors.Is(err, ErrPredictorPanic) {
		t.Errorf("PanicError is not ErrPredictorPanic")
	}
	var pe *PanicError
	if !errors.As(fmt.Errorf("trace x: %w", err), &pe) {
		t.Fatalf("errors.As failed")
	}
	if pe.Value != 42 || string(pe.Stack) != "goroutine 1 [running]" {
		t.Errorf("PanicError fields = %v / %q", pe.Value, pe.Stack)
	}
}

func TestPermanent(t *testing.T) {
	if !Permanent(ErrCorrupt) || !Permanent(ErrLimit) || !Permanent(NewPanicError("x", nil)) {
		t.Errorf("classified faults must be permanent")
	}
	// Deadline and drain outcomes must not enter the transient-retry loop:
	// a timed-out cell would time out again, and a draining sweep must stop.
	if !Permanent(ErrDeadline) || !Permanent(ErrDrained) {
		t.Errorf("deadline/drained must be permanent (no in-process retry)")
	}
	if Permanent(errors.New("EMFILE-ish transient")) {
		t.Errorf("unclassified errors must be retryable")
	}
}

func input(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func readVia(t *testing.T, r io.Reader) []byte {
	t.Helper()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return out
}

func TestInjectorBitFlip(t *testing.T) {
	src := input(100)
	got := readVia(t, NewInjector(bytes.NewReader(src), BitFlip(37, 5)))
	want := append([]byte(nil), src...)
	want[37] ^= 1 << 5
	if !bytes.Equal(got, want) {
		t.Errorf("bit flip mismatch at %d", firstDiff(got, want))
	}
}

func TestInjectorTruncate(t *testing.T) {
	src := input(100)
	got := readVia(t, NewInjector(bytes.NewReader(src), Truncate(40)))
	if !bytes.Equal(got, src[:40]) {
		t.Errorf("truncate: got %d bytes", len(got))
	}
	// Truncation at 0 yields an empty stream.
	if got := readVia(t, NewInjector(bytes.NewReader(src), Truncate(0))); len(got) != 0 {
		t.Errorf("truncate(0): got %d bytes", len(got))
	}
}

func TestInjectorGarbage(t *testing.T) {
	src := input(100)
	got := readVia(t, NewInjector(bytes.NewReader(src), Garbage(20, 10, 7)))
	if bytes.Equal(got[20:30], src[20:30]) {
		t.Errorf("garbage did not change the bytes")
	}
	if !bytes.Equal(got[:20], src[:20]) || !bytes.Equal(got[30:], src[30:]) {
		t.Errorf("garbage leaked outside its range")
	}
	// Same seed, same garbage — regardless of read fragmentation.
	again := readVia(t, ShortReads(NewInjector(bytes.NewReader(src), Garbage(20, 10, 7)), 3))
	if !bytes.Equal(got, again) {
		t.Errorf("garbage not deterministic under short reads")
	}
	// Different seed, different garbage.
	other := readVia(t, NewInjector(bytes.NewReader(src), Garbage(20, 10, 8)))
	if bytes.Equal(got, other) {
		t.Errorf("different seeds produced identical garbage")
	}
}

func TestInjectorComposesFaults(t *testing.T) {
	src := input(100)
	got := readVia(t, NewInjector(bytes.NewReader(src), BitFlip(10, 0), BitFlip(10, 1), Truncate(50)))
	want := append([]byte(nil), src[:50]...)
	want[10] ^= 0b11
	if !bytes.Equal(got, want) {
		t.Errorf("composed faults mismatch at %d", firstDiff(got, want))
	}
}

func TestShortReads(t *testing.T) {
	src := input(1000)
	r := ShortReads(bytes.NewReader(src), 7)
	buf := make([]byte, 100)
	n, err := r.Read(buf)
	if err != nil || n != 7 {
		t.Errorf("Read = %d, %v; want 7, nil", n, err)
	}
	rest := readVia(t, r)
	if !bytes.Equal(append(buf[:n], rest...), src) {
		t.Errorf("short reads changed the content")
	}
}

func firstDiff(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
