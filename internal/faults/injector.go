package faults

import "io"

// Kind enumerates the fault types the Injector can apply to a stream.
type Kind int

// Fault kinds.
const (
	// KindBitFlip XORs one bit of the byte at Offset.
	KindBitFlip Kind = iota
	// KindTruncate ends the stream at Offset: bytes [0, Offset) pass
	// through, then io.EOF.
	KindTruncate
	// KindGarbage overwrites Len bytes starting at Offset with
	// deterministic pseudo-random garbage derived from Seed.
	KindGarbage
)

// Fault is one deterministic corruption applied at a byte offset.
type Fault struct {
	Kind   Kind
	Offset int64
	Bit    uint8  // KindBitFlip: which bit (0-7) to flip
	Len    int64  // KindGarbage: how many bytes to overwrite
	Seed   uint64 // KindGarbage: PRNG seed; same seed, same garbage
}

// BitFlip returns a fault that flips the given bit of the byte at offset.
func BitFlip(offset int64, bit uint8) Fault {
	return Fault{Kind: KindBitFlip, Offset: offset, Bit: bit & 7}
}

// Truncate returns a fault that ends the stream after offset bytes.
func Truncate(offset int64) Fault {
	return Fault{Kind: KindTruncate, Offset: offset}
}

// Garbage returns a fault that overwrites n bytes from offset with
// deterministic garbage derived from seed.
func Garbage(offset, n int64, seed uint64) Fault {
	return Fault{Kind: KindGarbage, Offset: offset, Len: n, Seed: seed}
}

// Injector is an io.Reader that applies a fixed set of deterministic faults
// to the bytes of an underlying reader. The same underlying bytes and the
// same fault list always produce the same corrupted stream, which is what
// lets the corruption sweep tests bisect a failure to one byte offset.
type Injector struct {
	r      io.Reader
	faults []Fault
	off    int64 // stream offset of the next byte to serve
	cut    int64 // earliest truncation offset, -1 when none
}

// NewInjector wraps r with the given faults. Faults at overlapping offsets
// compose in list order.
func NewInjector(r io.Reader, faults ...Fault) *Injector {
	cut := int64(-1)
	for _, f := range faults {
		if f.Kind == KindTruncate && (cut < 0 || f.Offset < cut) {
			cut = f.Offset
		}
	}
	return &Injector{r: r, faults: faults, cut: cut}
}

func (in *Injector) Read(p []byte) (int, error) {
	if in.cut >= 0 {
		if in.off >= in.cut {
			return 0, io.EOF
		}
		if max := in.cut - in.off; int64(len(p)) > max {
			p = p[:max]
		}
	}
	n, err := in.r.Read(p)
	for _, f := range in.faults {
		switch f.Kind {
		case KindBitFlip:
			if i := f.Offset - in.off; i >= 0 && i < int64(n) {
				p[i] ^= 1 << f.Bit
			}
		case KindGarbage:
			lo, hi := f.Offset, f.Offset+f.Len
			for i := 0; i < n; i++ {
				if pos := in.off + int64(i); pos >= lo && pos < hi {
					p[i] = byte(splitmix64(f.Seed + uint64(pos)))
				}
			}
		}
	}
	in.off += int64(n)
	return n, err
}

// splitmix64 is the standard 64-bit mixer; one call per garbage byte keeps
// the injected noise deterministic in offset and seed alone, independent of
// read-call boundaries.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShortReads wraps r so every Read returns at most max bytes. It simulates
// a slow pipe or a pathological filesystem and exercises the resume paths
// of buffered readers; a correct reader produces identical results under
// any read fragmentation.
func ShortReads(r io.Reader, max int) io.Reader {
	if max < 1 {
		max = 1
	}
	return &shortReader{r: r, max: max}
}

type shortReader struct {
	r   io.Reader
	max int
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) > s.max {
		p = p[:s.max]
	}
	return s.r.Read(p)
}
