// Benchmarks regenerating every table and figure of the MBPlib paper's
// evaluation (§VII). Each benchmark family maps to one artifact:
//
//	BenchmarkFig1HeaderCodec   — Fig. 1, SBBT header encode/decode
//	BenchmarkFig2PacketCodec   — Fig. 2, SBBT packet encode/decode
//	BenchmarkTableI            — Table I, trace-set size ratios (reported
//	                             as custom metrics, not time)
//	BenchmarkTableIIIMBPlib    — Table III, this library per predictor
//	BenchmarkTableIIICBP5      — Table III, the CBP5-framework baseline
//	BenchmarkTableIIIChampSim  — Table III bottom, the cycle-level model
//	BenchmarkTableIVCBP5       — Table IV, framework with gzip vs MLZ traces
//
// Times are per simulated trace; custom metrics report branches/s so rows
// compare directly with the paper's shape (who wins, by what factor).
// Run with: go test -bench=. -benchmem
package mbplib

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"mbplib/internal/bench"
	"mbplib/internal/bp"
	"mbplib/internal/bt9"
	"mbplib/internal/cbp5"
	"mbplib/internal/compress"
	"mbplib/internal/cst"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
	"mbplib/internal/uarch"
)

// benchSpec is the reference workload: a SERVER-class trace, the kind the
// paper's Listing 1 uses.
var benchSpec = func() tracegen.Spec {
	specs, err := tracegen.Suite("cbp5-train", 100_000)
	if err != nil {
		panic(err)
	}
	for _, s := range specs {
		if s.Name == "SHORT_SERVER-1" {
			return s
		}
	}
	panic("SHORT_SERVER-1 missing from suite")
}()

// Lazily-built in-memory compressed traces shared by the benchmarks.
var (
	buildOnce sync.Once
	sbbtMLZ   []byte // SBBT + MLZ (the MBPlib distribution format)
	bt9Gz     []byte // BT9 + gzip (the CBP5 distribution format)
	bt9MLZ    []byte // BT9 + MLZ (Table IV)
	cstGz     []byte // ChampSim-style records + gzip
	cstSpec   tracegen.Spec
)

func buildTraces(b *testing.B) {
	b.Helper()
	buildOnce.Do(func() {
		instr, branches, err := tracegen.Totals(benchSpec)
		if err != nil {
			panic(err)
		}
		var raw bytes.Buffer
		w, err := sbbt.NewWriter(&raw, instr, branches)
		if err != nil {
			panic(err)
		}
		if err := tracegen.WriteSBBT(benchSpec, w.Write); err != nil {
			panic(err)
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		sbbtMLZ = compressBytes(raw.Bytes(), compress.FormatMLZ)

		raw.Reset()
		bw := bt9.NewWriter(&raw)
		if err := tracegen.WriteSBBT(benchSpec, bw.Write); err != nil {
			panic(err)
		}
		if err := bw.Close(); err != nil {
			panic(err)
		}
		bt9Gz = compressBytes(raw.Bytes(), compress.FormatGzip)
		bt9MLZ = compressBytes(raw.Bytes(), compress.FormatMLZ)

		// A smaller spec for the cycle-level model: it simulates every
		// instruction, so branch counts equivalent to the other rows would
		// dominate the whole benchmark run.
		cstSpec = benchSpec
		cstSpec.Branches = 20_000
		total, err := tracegen.InstrTotals(cstSpec)
		if err != nil {
			panic(err)
		}
		raw.Reset()
		cw, err := cst.NewWriter(&raw, total)
		if err != nil {
			panic(err)
		}
		ig, err := tracegen.NewInstrGenerator(cstSpec)
		if err != nil {
			panic(err)
		}
		var in cst.Instruction
		for ig.Read(&in) == nil {
			if err := cw.Write(&in); err != nil {
				panic(err)
			}
		}
		if err := cw.Close(); err != nil {
			panic(err)
		}
		cstGz = compressBytes(raw.Bytes(), compress.FormatGzip)
	})
}

func compressBytes(data []byte, format compress.Format) []byte {
	var buf bytes.Buffer
	w, err := compress.NewWriter(&buf, format, compress.LevelBest)
	if err != nil {
		panic(err)
	}
	if _, err := w.Write(data); err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// BenchmarkFig1HeaderCodec covers the header layout of Fig. 1.
func BenchmarkFig1HeaderCodec(b *testing.B) {
	buf := make([]byte, 0, sbbt.HeaderSize)
	h := sbbt.NewHeader(1_000_000_000, 50_000_000)
	for i := 0; i < b.N; i++ {
		buf = h.AppendTo(buf[:0])
		if _, err := sbbt.ParseHeader(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2PacketCodec covers the packet layout of Fig. 2.
func BenchmarkFig2PacketCodec(b *testing.B) {
	ev := bp.Event{
		Branch:                bp.Branch{IP: 0x7fff_1234_5678, Target: 0x7fff_9abc_def0, Opcode: bp.OpCondJump, Taken: true},
		InstrsSinceLastBranch: 7,
	}
	buf := make([]byte, 0, sbbt.PacketSize)
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = sbbt.EncodePacket(buf[:0], ev)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sbbt.DecodePacket(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI reports the trace-set size ratios of Table I as custom
// metrics (the artifact is sizes, not time).
func BenchmarkTableI(b *testing.B) {
	dir := b.TempDir()
	var rows []bench.SizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.TableI(dir, 10_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio, r.Set+"-size-ratio")
	}
}

// runMBPlib simulates one in-memory SBBT trace, the measured unit of the
// Table III MBPlib column.
func runMBPlib(b *testing.B, predictorSpec string) {
	buildTraces(b)
	b.ReportAllocs()
	b.ResetTimer()
	var branches uint64
	for i := 0; i < b.N; i++ {
		p, err := registry.New(predictorSpec)
		if err != nil {
			b.Fatal(err)
		}
		zr, err := compress.NewReader(bytes.NewReader(sbbtMLZ))
		if err != nil {
			b.Fatal(err)
		}
		r, err := sbbt.NewReader(zr)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(r, p, sim.Config{TraceName: benchSpec.Name})
		if err != nil {
			b.Fatal(err)
		}
		branches = res.Metadata.NumConditionalBranches
	}
	b.ReportMetric(float64(benchSpec.Branches)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
	_ = branches
}

// runCBP5 simulates the same trace through the framework baseline.
func runCBP5(b *testing.B, predictorSpec string, trace []byte) {
	buildTraces(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := registry.New(predictorSpec)
		if err != nil {
			b.Fatal(err)
		}
		zr, err := compress.NewReader(bytes.NewReader(trace))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cbp5.RunReader(zr, cbp5.Adapter{P: p}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchSpec.Branches)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

// BenchmarkTableIIIMBPlib is the MBPlib column of Table III (top).
func BenchmarkTableIIIMBPlib(b *testing.B) {
	for _, pred := range bench.TableIIIPredictors {
		b.Run(pred.Label, func(b *testing.B) { runMBPlib(b, pred.Spec) })
	}
}

// BenchmarkTableIIICBP5 is the CBP5-framework column of Table III (top).
func BenchmarkTableIIICBP5(b *testing.B) {
	buildTraces(b) // bt9Gz must exist before the closures capture it
	for _, pred := range bench.TableIIIPredictors {
		b.Run(pred.Label, func(b *testing.B) { runCBP5(b, pred.Spec, bt9Gz) })
	}
}

// BenchmarkTableIIIChampSim is the ChampSim column of Table III (bottom):
// the cycle-level model over full-instruction traces, for the two
// predictors the paper measures there.
func BenchmarkTableIIIChampSim(b *testing.B) {
	for _, pred := range []struct{ label, spec string }{
		{"GShare", "gshare"},
		{"BATAGE", "batage"},
	} {
		b.Run(pred.label, func(b *testing.B) {
			buildTraces(b)
			b.ReportAllocs()
			b.ResetTimer()
			var instr uint64
			for i := 0; i < b.N; i++ {
				p, err := registry.New(pred.spec)
				if err != nil {
					b.Fatal(err)
				}
				zr, err := compress.NewReader(bytes.NewReader(cstGz))
				if err != nil {
					b.Fatal(err)
				}
				r, err := cst.NewReader(zr)
				if err != nil {
					b.Fatal(err)
				}
				stats, err := uarch.Run(r, p, uarch.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
				instr = stats.Instructions
			}
			b.ReportMetric(float64(instr)*float64(b.N)/b.Elapsed().Seconds(), "instructions/s")
		})
	}
}

// BenchmarkTableIVCBP5 is Table IV: the framework over gzip traces against
// the same framework over MLZ-recompressed traces.
func BenchmarkTableIVCBP5(b *testing.B) {
	buildTraces(b)
	b.Run("Gzip", func(b *testing.B) { runCBP5(b, "bimodal", bt9Gz) })
	b.Run("MLZ", func(b *testing.B) { runCBP5(b, "bimodal", bt9MLZ) })
}

// BenchmarkAblationMLZLevel isolates the MLZ design choice the suite makes
// for trace distribution (§IV: "a bigger compression factor did not make
// the decompression slower"): LevelFast vs LevelBest compression of the
// same SBBT trace, reporting the ratio alongside the time.
func BenchmarkAblationMLZLevel(b *testing.B) {
	buildTraces(b)
	zr, err := compress.NewReader(bytes.NewReader(sbbtMLZ))
	if err != nil {
		b.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range []struct {
		name string
		l    compress.Level
	}{{"Fast", compress.LevelFast}, {"Best", compress.LevelBest}} {
		b.Run(level.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				w := compress.NewMLZWriter(&buf, level.l)
				if _, err := w.Write(raw); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				size = buf.Len()
			}
			b.SetBytes(int64(len(raw)))
			b.ReportMetric(float64(len(raw))/float64(size), "ratio")
		})
	}
}

// BenchmarkAblationMLZDecode measures decompression speed, the axis the
// suite optimises for (§IV chose zstd for decompression speed).
func BenchmarkAblationMLZDecode(b *testing.B) {
	buildTraces(b)
	var raw int64
	for i := 0; i < b.N; i++ {
		zr, err := compress.NewReader(bytes.NewReader(sbbtMLZ))
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, zr)
		if err != nil {
			b.Fatal(err)
		}
		raw = n
	}
	b.SetBytes(raw)
}

// BenchmarkAblationChampSimPrefetchers quantifies what the uarch model's
// prefetchers buy, reporting IPC with and without them.
func BenchmarkAblationChampSimPrefetchers(b *testing.B) {
	for _, abl := range []struct {
		name    string
		disable bool
	}{{"On", false}, {"Off", true}} {
		b.Run(abl.name, func(b *testing.B) {
			buildTraces(b)
			cfg := uarch.DefaultConfig()
			cfg.DisablePrefetchers = abl.disable
			b.ResetTimer()
			var ipc float64
			for i := 0; i < b.N; i++ {
				p, err := registry.New("gshare")
				if err != nil {
					b.Fatal(err)
				}
				zr, err := compress.NewReader(bytes.NewReader(cstGz))
				if err != nil {
					b.Fatal(err)
				}
				r, err := cst.NewReader(zr)
				if err != nil {
					b.Fatal(err)
				}
				stats, err := uarch.Run(r, p, cfg, 0)
				if err != nil {
					b.Fatal(err)
				}
				ipc = stats.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkPredictorsOnly measures the bare cost per branch of every
// Table III predictor, with trace decoding taken out of the loop — the
// predictor-code share of the simulation time the paper's Table III rows
// embed.
func BenchmarkPredictorsOnly(b *testing.B) {
	spec := benchSpec
	spec.Branches = 50_000
	g, err := tracegen.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	var events []bp.Event
	for {
		ev, err := g.Read()
		if err != nil {
			break
		}
		events = append(events, ev)
	}
	for _, pred := range bench.TableIIIPredictors {
		b.Run(pred.Label, func(b *testing.B) {
			p, err := registry.New(pred.Spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ev := range events {
					br := ev.Branch
					if br.Opcode.IsConditional() {
						p.Predict(br.IP)
						p.Train(br)
					}
					p.Track(br)
				}
			}
			b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
		})
	}
}
