module mbplib

go 1.22
