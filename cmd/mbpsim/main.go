// Command mbpsim runs a branch predictor over an SBBT trace and prints the
// simulation result as JSON in the layout of Listing 1 of the MBPlib paper.
//
// Being a library, MBPlib leaves main to the user; this command is the
// reference example of such a main: open the (possibly compressed) trace,
// build a predictor, call sim.Run, print the result.
//
// Usage:
//
//	mbpsim -trace traces/SHORT_SERVER-1.sbbt.mlz -predictor gshare:h=25,t=18
//	mbpsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mbplib/internal/compress"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "SBBT trace file (raw, .gz or .mlz)")
		predSpec  = flag.String("predictor", "gshare", "predictor spec, e.g. gshare:h=25,t=18")
		warmup    = flag.Uint64("warmup", 0, "warm-up instructions (mispredictions not counted)")
		simInstr  = flag.Uint64("sim", 0, "instructions to simulate after warm-up (0 = whole trace)")
		mostN     = flag.Int("most-failed", 0, "cap on most_failed entries (0 = half-of-mispredictions set)")
		list      = flag.Bool("list", false, "list available predictors and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range registry.Names() {
			fmt.Println(name)
		}
		return
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "mbpsim: -trace is required (see -help)")
		os.Exit(2)
	}
	if err := run(*tracePath, *predSpec, *warmup, *simInstr, *mostN); err != nil {
		fmt.Fprintln(os.Stderr, "mbpsim:", err)
		os.Exit(1)
	}
}

func run(tracePath, predSpec string, warmup, simInstr uint64, mostN int) error {
	p, err := registry.New(predSpec)
	if err != nil {
		return err
	}
	f, err := compress.OpenFile(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := sbbt.NewReader(f)
	if err != nil {
		return err
	}
	res, err := sim.Run(r, p, sim.Config{
		TraceName:          tracePath,
		WarmupInstructions: warmup,
		SimInstructions:    simInstr,
		MostFailedLimit:    mostN,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
