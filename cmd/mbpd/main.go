// Command mbpd is the sweep daemon: a long-running server that executes
// parameter sweeps submitted over a versioned JSON HTTP API and persists
// their results. It runs the identical internal/sweep pipeline as mbpsweep,
// so a job's result JSON is byte-identical to a local run of the same spec —
// `mbpctl submit` + `mbpctl wait` is a drop-in remote mbpsweep.
//
//	mbpd -data-dir /var/lib/mbpd -listen 127.0.0.1:7323
//
// The API (see internal/api) lives under /v1:
//
//	POST   /v1/jobs              submit a sweep spec
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status and result
//	GET    /v1/jobs/{id}/result  verbatim result bytes (?format=json|text)
//	GET    /v1/jobs/{id}/events  SSE progress stream
//	DELETE /v1/jobs/{id}         cancel (drain) a job
//	GET    /v1/healthz           daemon health ("ok" or "draining")
//
// Jobs are keyed by content (trace digests + expanded predictor specs +
// policy), so resubmitting finished work is a cache hit and a restarted
// daemon serves completed jobs from its data directory without simulating.
// Every job runs over its own resume journal; a SIGKILL'd daemon replays
// finished cells on the next run.
//
// With -listen on port 0 the kernel picks a free port; the bound address is
// written to <data-dir>/mbpd.addr for clients and scripts to discover.
//
// SIGINT/SIGTERM drain gracefully: submissions are refused (503, healthz
// reports "draining"), the in-flight job checkpoints and journals its
// unfinished cells as resumable, then the process exits — 0 when all
// admitted work finished, 4 (the drained code) when interrupted work
// remains for the next start. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mbplib/internal/cliflags"
	"mbplib/internal/daemon"
	"mbplib/internal/sim"
	"mbplib/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen     = fs.String("listen", "127.0.0.1:0", "host:port to serve the API on (port 0 = kernel-assigned)")
		dataDir    = fs.String("data-dir", "", "job store directory (jobs, journals, address file)")
		jobs       = fs.Int("j", runtime.GOMAXPROCS(0), "scheduler workers per sweep job")
		cacheBytes = fs.Int64("cache-bytes", sim.DefaultCacheBytes, "decoded-trace cache budget per job (0 disables)")
		queue      = fs.Int("queue", daemon.DefaultQueueDepth, "max admitted-but-unfinished jobs before submissions get 503")
		ckptEvery  = fs.Uint64("checkpoint-every", cliflags.DefaultCheckpointEvery, "events between in-flight cell checkpoints (0 disables)")
		cellTime   = fs.Duration("cell-timeout", 0, "wall-time budget per (value, trace) cell (0 = none)")
		backoff    = fs.Duration("retry-backoff", 100*time.Millisecond, "delay before the first transient-open retry (doubles per attempt)")
		snapEvery  = fs.Duration("snapshot-every", daemon.DefaultSnapshotEvery, "cadence of SSE progress snapshots")
	)
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	// The whole validation table runs before the data directory or the
	// listener is touched, so a usage error has no side effects.
	if err := cliflags.Validate(
		cliflags.Listen(*listen),
		cliflags.DataDir(*dataDir),
		cliflags.Workers(*jobs),
		cliflags.CacheBytes(*cacheBytes),
		cliflags.QueueDepth(*queue),
		cliflags.CellTimeout(*cellTime),
		cliflags.SnapshotEvery(*snapEvery),
	); err != nil {
		fmt.Fprintln(stderr, "mbpd:", err)
		return sweep.ExitUsage
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	d, err := daemon.New(daemon.Config{
		DataDir: *dataDir,
		Jobs:    *jobs, CacheBytes: cliflags.CacheBudget(*cacheBytes),
		QueueDepth:      *queue,
		CheckpointEvery: *ckptEvery, CellTimeout: *cellTime, Backoff: *backoff,
		SnapshotEvery: *snapEvery,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mbpd:", err)
		return sweep.ExitUsage
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "mbpd:", err)
		return sweep.ExitUsage
	}
	addr := ln.Addr().String()
	addrFile := filepath.Join(*dataDir, "mbpd.addr")
	if err := writeAddrFile(addrFile, addr); err != nil {
		fmt.Fprintln(stderr, "mbpd:", err)
		ln.Close()
		return sweep.ExitUsage
	}
	defer func() {
		if err := os.Remove(addrFile); err != nil && !errors.Is(err, os.ErrNotExist) {
			logf("mbpd: removing address file: %v", err)
		}
	}()
	logf("mbpd: listening on %s (data dir %s)", addr, *dataDir)

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	d.Start()

	drain, stopSignals := cliflags.DrainOnSignal("mbpd", stderr)
	defer stopSignals()

	select {
	case err := <-serveErr:
		// The listener died under us; drain what's running and report.
		fmt.Fprintln(stderr, "mbpd:", err)
		if cerr := d.Close(); cerr != nil {
			logf("mbpd: close: %v", cerr)
		}
		return sweep.ExitTotal
	case <-drain:
	}

	// Graceful drain: refuse new work (healthz says "draining") while the
	// in-flight job checkpoints, then stop the HTTP server and join the
	// serve goroutine.
	d.Drain()
	if err := d.Close(); err != nil {
		logf("mbpd: close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logf("mbpd: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("mbpd: serve: %v", err)
	}
	if d.Interrupted() {
		logf("mbpd: interrupted work remains; restart with the same -data-dir to resume")
		return sweep.ExitDrained
	}
	logf("mbpd: clean shutdown")
	return sweep.ExitOK
}

// writeAddrFile publishes the bound address atomically so a watcher never
// reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
