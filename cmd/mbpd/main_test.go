package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"mbplib/internal/api"
	"mbplib/internal/bench"
	"mbplib/internal/sweep"
)

// helperEnv re-execs this test binary as a real mbpd process, so the drain
// test has a genuine daemon to signal.
const helperEnv = "MBPD_HELPER_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(helperEnv); args != "" {
		os.Exit(run(strings.Split(args, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestFlagValidation walks the shared validation table: every bad flag is a
// usage error before the daemon touches the data directory or the network.
func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no-data-dir", []string{"-listen", "127.0.0.1:0"}, "-data-dir is required"},
		{"no-listen", []string{"-data-dir", dir, "-listen", ""}, "-listen is required"},
		{"bad-listen", []string{"-data-dir", dir, "-listen", "not an address"}, "host:port"},
		{"bad-port", []string{"-data-dir", dir, "-listen", "127.0.0.1:http"}, "non-numeric port"},
		{"bad-jobs", []string{"-data-dir", dir, "-j", "0"}, "-j must be >= 1"},
		{"bad-cache", []string{"-data-dir", dir, "-cache-bytes", "-5"}, "-cache-bytes must be >= 0"},
		{"bad-queue", []string{"-data-dir", dir, "-queue", "0"}, "-queue must be >= 1"},
		{"bad-cell-timeout", []string{"-data-dir", dir, "-cell-timeout", "-1s"}, "-cell-timeout must be >= 0"},
		{"bad-snapshot", []string{"-data-dir", dir, "-snapshot-every", "0s"}, "-snapshot-every must be > 0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != sweep.ExitUsage {
				t.Errorf("exit = %d, want %d", code, sweep.ExitUsage)
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q, want %q", errb.String(), tc.want)
			}
			// A usage error must leave no side effects behind.
			if _, err := os.Stat(filepath.Join(dir, "mbpd.addr")); err == nil {
				t.Error("usage error left an address file behind")
			}
		})
	}
}

// startChild launches a real mbpd over dataDir and returns its bound
// address once the address file appears.
func startChild(t *testing.T, dataDir string, extra ...string) (*exec.Cmd, string, *bytes.Buffer, chan error) {
	t.Helper()
	args := append([]string{"-data-dir", dataDir, "-listen", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, "\x1f"))
	var childErr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childErr, &childErr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	addrFile := filepath.Join(dataDir, "mbpd.addr")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("mbpd exited before binding: %v\n%s", err, childErr.String())
		default:
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, strings.TrimSpace(string(data)), &childErr, done
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("mbpd never published its address\n%s", childErr.String())
	return nil, "", nil, nil
}

// TestSIGTERMCleanDrain is the service lifecycle test: a daemon with no
// admitted work answers healthz, then drains to a clean exit 0 on SIGTERM
// and removes its address file.
func TestSIGTERMCleanDrain(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("signal-driven test")
	}
	dataDir := t.TempDir()
	cmd, addr, childErr, done := startChild(t, dataDir)

	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v\n%s", err, childErr.String())
	}
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != api.HealthOK {
		t.Fatalf("health = %+v, want ok", h)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("mbpd did not exit after SIGTERM\n%s", childErr.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != sweep.ExitOK {
		t.Fatalf("exit = %d, want %d\n%s", code, sweep.ExitOK, childErr.String())
	}
	if !strings.Contains(childErr.String(), "draining") {
		t.Errorf("stderr does not announce the drain:\n%s", childErr.String())
	}
	if _, err := os.Stat(filepath.Join(dataDir, "mbpd.addr")); !os.IsNotExist(err) {
		t.Errorf("address file survived shutdown (err=%v)", err)
	}
}

// TestSIGTERMInterruptedWorkExitsDrained submits a deliberately long sweep,
// signals mid-run, and requires the drained exit code (4) plus a journal on
// disk — the daemon-side mirror of mbpsweep's drain contract.
func TestSIGTERMInterruptedWorkExitsDrained(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("signal-driven test")
	}
	traceDir := t.TempDir()
	if _, err := bench.PrepareSuite(traceDir, "cbp5-train", 60_000, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	cmd, addr, childErr, done := startChild(t, dataDir, "-checkpoint-every", "4096")

	body, err := json.Marshal(api.SubmitRequest{
		APIVersion: api.Version,
		Spec: api.SweepSpec{
			Traces:    filepath.Join(traceDir, "*.sbbt*"),
			Predictor: "gshare:t=14,h=%d",
			From:      4, To: 16, Policy: "skip",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	// Let the job reach its journal before signalling, so the drain has
	// in-flight work to checkpoint.
	seg := filepath.Join(dataDir, "jobs", sub.ID, "journal", "journal-000000.mbpj")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(seg); err == nil && fi.Size() > 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal %s never saw a committed cell\n%s", seg, childErr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("mbpd did not exit after SIGTERM\n%s", childErr.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != sweep.ExitDrained {
		t.Fatalf("exit = %d, want %d (interrupted work)\n%s", code, sweep.ExitDrained, childErr.String())
	}

	// A fresh daemon over the same data dir still knows the job.
	cmd2, addr2, childErr2, done2 := startChild(t, dataDir)
	resp, err = http.Get(fmt.Sprintf("http://%s/v1/jobs/%s", addr2, sub.ID))
	if err != nil {
		t.Fatalf("%v\n%s", err, childErr2.String())
	}
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.ID != sub.ID {
		t.Fatalf("restarted daemon lost the job: %+v", job)
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done2:
	case <-time.After(60 * time.Second):
		t.Fatalf("second mbpd did not exit\n%s", childErr2.String())
	}
}
