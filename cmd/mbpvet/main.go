// Command mbpvet is MBPlib's own static analyzer. It loads the module's
// source with go/parser and go/types (stdlib only, no external tooling) and
// runs nine rules through the internal/vet/driver analyzer framework,
// enforcing the contracts the paper states in prose plus the repository's
// concurrency conventions:
//
//	V1 purity     — Predict must not mutate predictor state (§IV-A)
//	V2 registry   — every predictor package is constructible by name
//	V3 droppederr — no discarded errors in the codec/simulator packages
//	V4 bitwidth   — no silent truncation on the SBBT/BT9 codec paths,
//	                power-of-two table sizes wherever a mask is derived
//	V5 panicfree  — no reachable panic in the packages that decode
//	                untrusted trace bytes (sbbt, bt9, compress)
//	V6 goroutine  — every go statement in sim/obs/cmd has a provable join
//	                or cancel path
//	V7 guardedby  — mutex-guarded fields are never accessed bare
//	V8 atomic     — atomically-accessed fields are never accessed plainly;
//	                64-bit atomics are alignment-safe
//	V9 ctxprop    — a received context.Context is propagated, not dropped
//
// Usage:
//
//	mbpvet [flags] [dir|./...]
//
//	-rules purity,goroutine   run only the named rules (vN aliases work)
//	-json                     render findings as JSON on stdout
//	-sarif                    render findings as SARIF 2.1.0 on stdout
//	-fix                      apply suggested fixes, then re-run and report
//	-list                     print the rule catalogue and exit
//
// Findings print as "file:line: rule: message" and exit status 1 reports
// that at least one rule fired; exit 2 is a usage or load error. Documented
// exceptions are declared in the source with //mbpvet:impure,
// //mbpvet:ignore <rule> -- <justification>,
// //mbpvet:panicfree-exempt <justification>,
// //mbpvet:goroutine-exempt <justification>, or a //mbpvet:guardedby
// contract annotation; see README.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mbplib/internal/cliflags"
	"mbplib/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests can drive the CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mbpvet [flags] [dir|./...]\n")
		fs.PrintDefaults()
	}
	var (
		jsonOut  = fs.Bool("json", false, "render findings as JSON on stdout")
		sarifOut = fs.Bool("sarif", false, "render findings as SARIF 2.1.0 on stdout")
		applyFix = fs.Bool("fix", false, "apply suggested fixes in place, then report what remains")
		rulesArg = fs.String("rules", "", "comma-separated rules to run (names or v1..v9 aliases; default all)")
		list     = fs.Bool("list", false, "print the rule catalogue and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for i, r := range vet.AllRules() {
			fmt.Fprintf(stdout, "v%d %-10s %s\n", i+1, r, vet.RuleDoc(r))
		}
		return 0
	}
	if err := cliflags.ValidateVetOutput(*jsonOut, *sarifOut); err != nil {
		fmt.Fprintln(stderr, "mbpvet:", err)
		return 2
	}
	rules := cliflags.SplitVetRules(*rulesArg)

	dir := "."
	if fs.NArg() > 0 {
		// The conventional "./..." spelling means "the whole module"; any
		// other argument names the directory to start from.
		if arg := fs.Arg(0); arg != "./..." && arg != "..." {
			dir = filepath.Clean(arg)
		}
	}

	root, err := vet.FindModuleRoot(dir)
	if err != nil {
		return fatal(stderr, err)
	}
	module, err := vet.ModulePath(root)
	if err != nil {
		return fatal(stderr, err)
	}
	prog, err := vet.Load(root, module)
	if err != nil {
		return fatal(stderr, err)
	}
	cfg := vet.DefaultConfig(module)
	findings, err := vet.RunAnalyzers(prog, cfg, rules)
	if err != nil {
		return fatal(stderr, err)
	}

	if *applyFix {
		changed, err := vet.ApplyFixes(prog.Fset, findings)
		if err != nil {
			return fatal(stderr, err)
		}
		for _, path := range changed {
			if rel, err := filepath.Rel(root, path); err == nil {
				path = rel
			}
			fmt.Fprintf(stderr, "mbpvet: fixed %s\n", path)
		}
		if len(changed) > 0 {
			// Re-load and re-run: the fixes moved positions, and a fix can
			// resolve (or expose) findings.
			prog, err = vet.Load(root, module)
			if err != nil {
				return fatal(stderr, err)
			}
			findings, err = vet.RunAnalyzers(prog, cfg, rules)
			if err != nil {
				return fatal(stderr, err)
			}
		}
	}

	switch {
	case *jsonOut:
		err = vet.WriteJSON(stdout, findings, root)
	case *sarifOut:
		err = vet.WriteSARIF(stdout, findings, root)
	default:
		err = vet.WriteText(stdout, findings, root)
	}
	if err != nil {
		return fatal(stderr, err)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mbpvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "mbpvet:", err)
	return 2
}
