// Command mbpvet is MBPlib's own static analyzer. It loads the module's
// source with go/parser and go/types (stdlib only, no external tooling) and
// enforces the contracts the paper states in prose:
//
//	V1 purity     — Predict must not mutate predictor state (§IV-A)
//	V2 registry   — every predictor package is constructible by name
//	V3 droppederr — no discarded errors in the codec/simulator packages
//	V4 bitwidth   — no silent truncation on the SBBT/BT9 codec paths,
//	                power-of-two table sizes wherever a mask is derived
//	V5 panicfree  — no reachable panic in the packages that decode
//	                untrusted trace bytes (sbbt, bt9, compress); hostile
//	                input must fail with a typed error from the faults
//	                taxonomy
//
// Usage:
//
//	mbpvet [./...]
//
// Findings print as "file:line: rule: message" and a nonzero exit status
// reports that at least one rule fired. Documented exceptions are declared
// in the source with //mbpvet:impure (on a Predict method),
// //mbpvet:ignore <rule> -- <justification>, or
// //mbpvet:panicfree-exempt <justification> (on a deliberate internal
// invariant panic); see README.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mbplib/internal/vet"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mbpvet [dir|./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dir := "."
	if flag.NArg() > 0 {
		// The conventional "./..." spelling means "the whole module"; any
		// other argument names the directory to start from.
		if arg := flag.Arg(0); arg != "./..." && arg != "..." {
			dir = filepath.Clean(arg)
		}
	}

	root, err := vet.FindModuleRoot(dir)
	if err != nil {
		fatal(err)
	}
	module, err := vet.ModulePath(root)
	if err != nil {
		fatal(err)
	}
	prog, err := vet.Load(root, module)
	if err != nil {
		fatal(err)
	}
	findings := vet.Run(prog, vet.DefaultConfig(module))
	for _, f := range findings {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mbpvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbpvet:", err)
	os.Exit(2)
}
