package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbplib/internal/vet"
)

// tmpModule writes a throwaway module with the given files (path -> source)
// and returns its root.
func tmpModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const leakySim = `// Package sim is a CLI-test fixture with one goroutine leak.
package sim

// Leak launches a goroutine with no join path.
func Leak() {
	go func() {
		var n int
		n++
		_ = n
	}()
}
`

const cleanSim = `// Package sim is a conforming CLI-test fixture.
package sim

// Nothing is here on purpose.
func Nothing() {}
`

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunCleanModuleExitsZero(t *testing.T) {
	dir := tmpModule(t, map[string]string{"internal/sim/sim.go": cleanSim})
	code, stdout, stderr := runCLI(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed: %q", stdout)
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	dir := tmpModule(t, map[string]string{"internal/sim/sim.go": leakySim})
	code, stdout, stderr := runCLI(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "goroutine") || !strings.Contains(stdout, "internal/sim/sim.go:6") {
		t.Errorf("text output missing the finding: %q", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr missing the count: %q", stderr)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := tmpModule(t, map[string]string{"internal/sim/sim.go": leakySim})
	code, stdout, _ := runCLI(t, "-json", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Version  int `json:"version"`
		Count    int `json:"count"`
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Rule string `json:"rule"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, stdout)
	}
	if doc.Count != 1 || len(doc.Findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %+v", doc)
	}
	f := doc.Findings[0]
	if f.Rule != "goroutine" || f.File != "internal/sim/sim.go" || f.Line != 6 {
		t.Errorf("finding = %+v, want goroutine at internal/sim/sim.go:6", f)
	}
}

func TestRunSARIFOutput(t *testing.T) {
	dir := tmpModule(t, map[string]string{"internal/sim/sim.go": leakySim})
	code, stdout, _ := runCLI(t, "-sarif", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("-sarif output is not JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || len(doc.Runs[0].Results) != 1 || doc.Runs[0].Results[0].RuleID != "goroutine" {
		t.Errorf("unexpected SARIF shape: %s", stdout)
	}
}

func TestRunJSONAndSARIFAreMutuallyExclusive(t *testing.T) {
	code, _, stderr := runCLI(t, "-json", "-sarif", ".")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("stderr = %q, want a mutually-exclusive diagnostic", stderr)
	}
}

func TestRunUnknownRuleExitsTwo(t *testing.T) {
	dir := tmpModule(t, map[string]string{"internal/sim/sim.go": cleanSim})
	code, _, stderr := runCLI(t, "-rules", "nosuchrule", dir)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "unknown rule") {
		t.Errorf("stderr = %q, want an unknown-rule diagnostic", stderr)
	}
}

func TestRunRuleSelection(t *testing.T) {
	dir := tmpModule(t, map[string]string{"internal/sim/sim.go": leakySim})
	// The leak is a V6 finding; running only V9 must be clean.
	code, _, _ := runCLI(t, "-rules", "v9", dir)
	if code != 0 {
		t.Fatalf("-rules v9 exit = %d, want 0 (the leak is a v6 finding)", code)
	}
	code, stdout, _ := runCLI(t, "-rules", "v6,ctxprop", dir)
	if code != 1 || !strings.Contains(stdout, "goroutine") {
		t.Fatalf("-rules v6,ctxprop exit = %d, want 1 with the goroutine finding\n%s", code, stdout)
	}
}

func TestRunList(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != len(vet.AllRules()) {
		t.Fatalf("-list printed %d lines, want %d", len(lines), len(vet.AllRules()))
	}
	for i, rule := range vet.AllRules() {
		if !strings.Contains(lines[i], rule) {
			t.Errorf("-list line %d = %q, want rule %s", i, lines[i], rule)
		}
	}
}

func TestRunFixRewritesModule(t *testing.T) {
	dir := tmpModule(t, map[string]string{"internal/sim/sim.go": `// Package sim is the CLI autofix fixture.
package sim

import "context"

// Wait detaches its context.
func Wait(ctx context.Context) error {
	return block(context.Background())
}

func block(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
`})
	code, stdout, stderr := runCLI(t, "-fix", dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 after fixing\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "fixed "+filepath.Join("internal", "sim", "sim.go")) {
		t.Errorf("stderr = %q, want a fixed-file note", stderr)
	}
	src, err := os.ReadFile(filepath.Join(dir, "internal", "sim", "sim.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "block(ctx)") {
		t.Errorf("fix not applied:\n%s", src)
	}
}
