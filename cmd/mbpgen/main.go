// Command mbpgen materialises the synthetic trace suites on disk. It plays
// the role of the PIN instrumentation module and the trace downloads of
// §IV-D of the MBPlib paper: since the CBP5 and DPC3 sets are not
// redistributable, the suites are regenerated deterministically.
//
// Usage:
//
//	mbpgen -suite cbp5-train -dir traces -scale 200000
//	mbpgen -suite dpc3 -dir traces -formats sbbt,cst
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mbplib/internal/bench"
	"mbplib/internal/tracegen"
)

func main() {
	var (
		suite     = flag.String("suite", "cbp5-train", "suite to generate: "+strings.Join(tracegen.SuiteNames(), ", "))
		dir       = flag.String("dir", "traces", "output directory")
		scale     = flag.Uint64("scale", 200_000, "branches in a short trace (long traces are 8x)")
		formats   = flag.String("formats", "sbbt", "comma-separated: sbbt, mlzs, bt9, bt9mlz, cst")
		compressJ = flag.Int("compress-j", 1, "parallel compression workers for the mlzs format (output is identical at any width)")
	)
	flag.Parse()
	if err := run(*suite, *dir, *scale, *formats, *compressJ); err != nil {
		fmt.Fprintln(os.Stderr, "mbpgen:", err)
		os.Exit(1)
	}
}

func run(suite, dir string, scale uint64, formats string, compressJ int) error {
	if compressJ < 1 {
		return fmt.Errorf("-compress-j must be >= 1 (got %d)", compressJ)
	}
	f := bench.Formats{MLZSWorkers: compressJ}
	for _, name := range strings.Split(formats, ",") {
		switch strings.TrimSpace(name) {
		case "sbbt":
			f.SBBT = true
		case "mlzs":
			f.SBBTMLZS = true
		case "bt9":
			f.BT9Gz = true
		case "bt9mlz":
			f.BT9MLZ = true
		case "cst":
			f.CSTGz = true
		case "":
		default:
			return fmt.Errorf("unknown format %q", name)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ts, err := bench.PrepareSuite(dir, suite, scale, f)
	if err != nil {
		return err
	}
	for _, paths := range [][]string{ts.SBBT, ts.SBBTMLZS, ts.BT9Gz, ts.BT9MLZ, ts.CSTGz} {
		for _, p := range paths {
			fi, err := os.Stat(p)
			if err != nil {
				return err
			}
			fmt.Printf("%10s  %s\n", bench.HumanBytes(fi.Size()), p)
		}
	}
	return nil
}
