// Command mbpsweep measures how a predictor's MPKI varies with one integer
// parameter across a set of traces — the parameter-optimization use case of
// §VI-A of the MBPlib paper. The CMake for-loop of Listing 3, which builds
// one executable per parameter value, becomes a flag:
//
//	mbpsweep -traces 'traces/*.sbbt.mlz' -predictor 'gshare:t=18,h=%d' -from 6 -to 30
//
// The predictor spec contains a %d placeholder that receives each swept
// value; the output is one row per value with the average MPKI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mbplib/internal/sim"

	"mbplib/internal/bench"
)

func main() {
	var (
		globs    = flag.String("traces", "", "glob of SBBT trace files")
		predSpec = flag.String("predictor", "gshare:t=18,h=%d", "predictor spec with a %d placeholder")
		from     = flag.Int("from", 6, "first swept value")
		to       = flag.Int("to", 30, "last swept value")
		step     = flag.Int("step", 1, "sweep step")
	)
	flag.Parse()
	if *globs == "" {
		fmt.Fprintln(os.Stderr, "mbpsweep: -traces is required (see -help)")
		os.Exit(2)
	}
	if err := run(*globs, *predSpec, *from, *to, *step); err != nil {
		fmt.Fprintln(os.Stderr, "mbpsweep:", err)
		os.Exit(1)
	}
}

func run(globs, predSpec string, from, to, step int) error {
	if !strings.Contains(predSpec, "%d") {
		return fmt.Errorf("predictor spec %q has no %%d placeholder", predSpec)
	}
	if step <= 0 || to < from {
		return fmt.Errorf("invalid sweep range [%d, %d] step %d", from, to, step)
	}
	paths, err := filepath.Glob(globs)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no traces match %q", globs)
	}
	sort.Strings(paths)

	fmt.Printf("%-40s | avg MPKI over %d traces\n", "predictor", len(paths))
	fmt.Println(strings.Repeat("-", 70))
	bestSpec, bestMPKI := "", 0.0
	for v := from; v <= to; v += step {
		spec := fmt.Sprintf(predSpec, v)
		var sum float64
		for _, path := range paths {
			res, err := bench.RunSBBT(path, spec, sim.Config{})
			if err != nil {
				return fmt.Errorf("%s on %s: %w", spec, path, err)
			}
			sum += res.Metrics.MPKI
		}
		avg := sum / float64(len(paths))
		fmt.Printf("%-40s | %.4f\n", spec, avg)
		if bestSpec == "" || avg < bestMPKI {
			bestSpec, bestMPKI = spec, avg
		}
	}
	fmt.Println(strings.Repeat("-", 70))
	fmt.Printf("best: %s (%.4f MPKI)\n", bestSpec, bestMPKI)
	return nil
}
