// Command mbpsweep measures how a predictor's MPKI varies with one integer
// parameter across a set of traces — the parameter-optimization use case of
// §VI-A of the MBPlib paper. The CMake for-loop of Listing 3, which builds
// one executable per parameter value, becomes a flag:
//
//	mbpsweep -traces 'traces/*.sbbt.mlz' -predictor 'gshare:t=18,h=%d' -from 6 -to 30
//
// The predictor spec contains a %d placeholder that receives each swept
// value; the output is one row per value with the average MPKI.
//
// With -j N (default GOMAXPROCS) the whole value × trace matrix is scheduled
// across N workers backed by a shared decoded-trace cache, so each trace is
// decoded once and scored by every swept value concurrently. -j 1 runs the
// exact legacy per-value loop. Output is byte-identical either way.
//
// Each value's trace set runs through the sim fault policy: with -policy
// skip, traces that fail to decode (or whose predictor panics) are excluded
// from that value's average and reported once in a failure table at the end,
// classified by the faults taxonomy. Transient open errors can be retried
// with -retries and -retry-backoff.
//
// With -resume DIR the sweep is crash-safe: every finished (value, trace)
// cell is appended to a durable journal in DIR before the sweep moves on,
// and a re-run with the same flags replays finished cells instead of
// simulating them. -checkpoint-every N additionally snapshots in-flight
// cells of checkpointable predictors every N events, so an interrupted cell
// resumes mid-trace. SIGINT/SIGTERM drain gracefully: no new cells start,
// in-flight cells checkpoint, and unfinished work is reported as resumable
// (exit code 4); a second signal aborts immediately. -cell-timeout bounds
// each cell's wall time; a blown deadline is a final, journalled failure.
//
// The same sweep can run remotely: mbpd executes submitted specs through
// the identical internal/sweep pipeline, and `mbpctl submit`/`mbpctl wait`
// return byte-identical result JSON to a local mbpsweep run.
//
// Exit codes: 0 success, 1 usage error, 2 partial failure (some traces
// failed but every value still scored), 3 total failure, 4 drained (the
// run was interrupted; re-run with -resume to finish the rest).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mbplib/internal/cliflags"
	"mbplib/internal/faults"
	"mbplib/internal/prof"
	"mbplib/internal/sim"
	"mbplib/internal/sim/journal"
	"mbplib/internal/sweep"
)

// Exit codes (shared with the daemon path via internal/sweep).
const (
	exitOK      = sweep.ExitOK
	exitUsage   = sweep.ExitUsage
	exitPartial = sweep.ExitPartial
	exitTotal   = sweep.ExitTotal
	exitDrained = sweep.ExitDrained
)

// Row types are shared with the daemon renderer.
type (
	valueRow   = sweep.ValueRow
	failureRow = sweep.FailureRow
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		globs      = fs.String("traces", "", "glob of SBBT trace files")
		predSpec   = fs.String("predictor", "gshare:t=18,h=%d", "predictor spec with a %d placeholder")
		from       = fs.Int("from", 6, "first swept value")
		to         = fs.Int("to", 30, "last swept value")
		step       = fs.Int("step", 1, "sweep step")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent traces per swept value on the legacy path (-j 1)")
		jobs       = fs.Int("j", runtime.GOMAXPROCS(0), "parallel scheduler workers over the value × trace matrix (1 = exact legacy path)")
		decodeJ    = fs.Int("decode-j", 1, "chunk-decode workers per trace for seekable (MLZS) containers")
		cacheBytes = fs.Int64("cache-bytes", sim.DefaultCacheBytes, "decoded-trace cache budget for -j > 1 (0 disables)")
		jsonOut    = fs.Bool("json", false, "print the sweep as JSON")
		metricsTo  = fs.String("metrics", "", "write a pipeline metrics JSON snapshot to this file ('-' = stderr)")
		progress   = fs.Bool("progress", false, "render a live progress line on stderr")
		policyName = fs.String("policy", "failfast", "per-trace failure policy: failfast or skip")
		retries    = fs.Int("retries", 0, "retry transient trace-open failures this many times")
		backoff    = fs.Duration("retry-backoff", 100*time.Millisecond, "delay before the first retry (doubles per attempt)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		resume     = fs.String("resume", "", "journal directory for crash-safe, resumable sweeps")
		ckptEvery  = fs.Uint64("checkpoint-every", cliflags.DefaultCheckpointEvery, "events between in-flight cell checkpoints (with -resume; 0 disables)")
		cellTime   = fs.Duration("cell-timeout", 0, "wall-time budget per (value, trace) cell (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *globs == "" {
		fmt.Fprintln(stderr, "mbpsweep: -traces is required (see -help)")
		return exitUsage
	}
	// The whole validation table runs before any side effect (profiles,
	// journal directories), so a usage error never leaves files behind.
	if err := cliflags.Validate(
		cliflags.Workers(*jobs),
		cliflags.DecodeWorkers(*decodeJ),
		cliflags.CacheBytes(*cacheBytes),
		cliflags.CellTimeout(*cellTime),
		cliflags.ResumeOptions(*resume, cliflags.FlagWasSet(fs, "checkpoint-every")),
		cliflags.PolicyName(*policyName),
		cliflags.Retries(*retries),
	); err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	spec := sweep.Spec{
		Traces: *globs, Predictor: *predSpec,
		From: *from, To: *to, Step: *step,
		Policy: *policyName, Retries: *retries,
	}.Normalized()
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
		}
	}()
	resolved, err := spec.Resolve()
	if err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	mode, err := spec.Mode()
	if err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	policy := sim.Policy{Mode: mode, Retries: *retries, Backoff: *backoff}

	// A resume journal keys cells by trace content digest, so a renamed or
	// moved trace file still replays; an unreadable file falls back to its
	// path (the open will fail properly during the sweep).
	var jnl *journal.Journal
	if *resume != "" {
		if jnl, err = journal.Open(*resume); err != nil {
			fmt.Fprintln(stderr, "mbpsweep: opening resume journal:", err)
			return exitUsage
		}
		resolved.AttachDigests()
	}

	// Compute: one SetResult per swept value, from either path. Results and
	// failure tables are deterministic and identical across paths — metrics
	// collection only observes, so -metrics/-progress never change stdout.
	metrics := cliflags.NewMetrics(*metricsTo, *progress, stderr)
	closeMetrics := func() {
		if err := metrics.Close(); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
		}
	}
	drain, stopSignals := cliflags.DrainOnSignal("mbpsweep", stderr)
	defer stopSignals()
	sets, err := resolved.Run(sweep.RunOptions{
		Jobs: *jobs, DecodeWorkers: *decodeJ, LegacyWorkers: *workers,
		CacheBytes: cliflags.CacheBudget(*cacheBytes), Policy: policy,
		Metrics: metrics.Collector(),
		Journal: jnl, CheckpointEvery: *ckptEvery, Drain: drain, CellTimeout: *cellTime,
	})
	if err != nil {
		closeMetrics()
		fmt.Fprintf(stderr, "mbpsweep: %v\n", err)
		if errors.Is(err, faults.ErrDrained) {
			return exitDrained
		}
		return exitTotal
	}
	closeMetrics()
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(stderr, "mbpsweep: closing resume journal:", err)
		}
	}

	return sweep.Render(stdout, stderr, resolved.Specs, sets, len(resolved.Sources), *jsonOut)
}
