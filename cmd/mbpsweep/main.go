// Command mbpsweep measures how a predictor's MPKI varies with one integer
// parameter across a set of traces — the parameter-optimization use case of
// §VI-A of the MBPlib paper. The CMake for-loop of Listing 3, which builds
// one executable per parameter value, becomes a flag:
//
//	mbpsweep -traces 'traces/*.sbbt.mlz' -predictor 'gshare:t=18,h=%d' -from 6 -to 30
//
// The predictor spec contains a %d placeholder that receives each swept
// value; the output is one row per value with the average MPKI.
//
// With -j N (default GOMAXPROCS) the whole value × trace matrix is scheduled
// across N workers backed by a shared decoded-trace cache, so each trace is
// decoded once and scored by every swept value concurrently. -j 1 runs the
// exact legacy per-value loop. Output is byte-identical either way.
//
// Each value's trace set runs through the sim fault policy: with -policy
// skip, traces that fail to decode (or whose predictor panics) are excluded
// from that value's average and reported once in a failure table at the end,
// classified by the faults taxonomy. Transient open errors can be retried
// with -retries and -retry-backoff.
//
// With -resume DIR the sweep is crash-safe: every finished (value, trace)
// cell is appended to a durable journal in DIR before the sweep moves on,
// and a re-run with the same flags replays finished cells instead of
// simulating them. -checkpoint-every N additionally snapshots in-flight
// cells of checkpointable predictors every N events, so an interrupted cell
// resumes mid-trace. SIGINT/SIGTERM drain gracefully: no new cells start,
// in-flight cells checkpoint, and unfinished work is reported as resumable
// (exit code 4); a second signal aborts immediately. -cell-timeout bounds
// each cell's wall time; a blown deadline is a final, journalled failure.
//
// Exit codes: 0 success, 1 usage error, 2 partial failure (some traces
// failed but every value still scored), 3 total failure, 4 drained (the
// run was interrupted; re-run with -resume to finish the rest).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/cliflags"
	"mbplib/internal/compress"
	"mbplib/internal/faults"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/prof"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/sim/journal"
)

// Exit codes.
const (
	exitOK      = 0
	exitUsage   = 1
	exitPartial = 2
	exitTotal   = 3
	exitDrained = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		globs      = fs.String("traces", "", "glob of SBBT trace files")
		predSpec   = fs.String("predictor", "gshare:t=18,h=%d", "predictor spec with a %d placeholder")
		from       = fs.Int("from", 6, "first swept value")
		to         = fs.Int("to", 30, "last swept value")
		step       = fs.Int("step", 1, "sweep step")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent traces per swept value on the legacy path (-j 1)")
		jobs       = fs.Int("j", runtime.GOMAXPROCS(0), "parallel scheduler workers over the value × trace matrix (1 = exact legacy path)")
		cacheBytes = fs.Int64("cache-bytes", sim.DefaultCacheBytes, "decoded-trace cache budget for -j > 1 (0 disables)")
		jsonOut    = fs.Bool("json", false, "print the sweep as JSON")
		metricsTo  = fs.String("metrics", "", "write a pipeline metrics JSON snapshot to this file ('-' = stderr)")
		progress   = fs.Bool("progress", false, "render a live progress line on stderr")
		policyName = fs.String("policy", "failfast", "per-trace failure policy: failfast or skip")
		retries    = fs.Int("retries", 0, "retry transient trace-open failures this many times")
		backoff    = fs.Duration("retry-backoff", 100*time.Millisecond, "delay before the first retry (doubles per attempt)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		resume     = fs.String("resume", "", "journal directory for crash-safe, resumable sweeps")
		ckptEvery  = fs.Uint64("checkpoint-every", cliflags.DefaultCheckpointEvery, "events between in-flight cell checkpoints (with -resume; 0 disables)")
		cellTime   = fs.Duration("cell-timeout", 0, "wall-time budget per (value, trace) cell (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *globs == "" {
		fmt.Fprintln(stderr, "mbpsweep: -traces is required (see -help)")
		return exitUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
		}
	}()
	if !strings.Contains(*predSpec, "%d") {
		fmt.Fprintf(stderr, "mbpsweep: predictor spec %q has no %%d placeholder\n", *predSpec)
		return exitUsage
	}
	if *step <= 0 || *to < *from {
		fmt.Fprintf(stderr, "mbpsweep: invalid sweep range [%d, %d] step %d\n", *from, *to, *step)
		return exitUsage
	}
	if err := cliflags.ValidateWorkers(*jobs); err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	if err := cliflags.ValidateCacheBytes(*cacheBytes); err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	if err := cliflags.ValidateCellTimeout(*cellTime); err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	ckptSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "checkpoint-every" {
			ckptSet = true
		}
	})
	if err := cliflags.ValidateResumeOptions(*resume, ckptSet); err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	policy := sim.Policy{Retries: *retries, Backoff: *backoff}
	switch *policyName {
	case "failfast":
		policy.Mode = sim.FailFast
	case "skip":
		policy.Mode = sim.SkipFailed
	default:
		fmt.Fprintf(stderr, "mbpsweep: unknown -policy %q (want failfast or skip)\n", *policyName)
		return exitUsage
	}
	if *retries < 0 {
		fmt.Fprintf(stderr, "mbpsweep: -retries must be non-negative, got %d\n", *retries)
		return exitUsage
	}
	paths, err := filepath.Glob(*globs)
	if err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "mbpsweep: no traces match %q\n", *globs)
		return exitUsage
	}
	sort.Strings(paths)

	sources := make([]sim.TraceSource, len(paths))
	for i, path := range paths {
		sources[i] = sim.TraceSource{Name: path, Open: func() (bp.Reader, io.Closer, error) {
			f, err := compress.OpenFile(path)
			if err != nil {
				return nil, nil, err
			}
			r, err := sbbt.NewReader(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return r, f, nil
		}}
	}

	// A resume journal keys cells by trace content digest, so a renamed or
	// moved trace file still replays; an unreadable file falls back to its
	// path (the open will fail properly during the sweep).
	var jnl *journal.Journal
	if *resume != "" {
		if jnl, err = journal.Open(*resume); err != nil {
			fmt.Fprintln(stderr, "mbpsweep: opening resume journal:", err)
			return exitUsage
		}
		for i, path := range paths {
			if d, derr := journal.DigestFile(path); derr == nil {
				sources[i].Digest = d
			}
		}
	}

	// Expand and validate every swept spec before running anything.
	var specs []string
	for v := *from; v <= *to; v += *step {
		spec := fmt.Sprintf(*predSpec, v)
		if _, err := registry.New(spec); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
			return exitUsage
		}
		specs = append(specs, spec)
	}
	newFor := func(spec string) func() bp.Predictor {
		return func() bp.Predictor {
			p, err := registry.New(spec)
			if err != nil {
				panic(err) // validated above; specs are immutable strings
			}
			return p
		}
	}

	// Compute: one SetResult per swept value, from either path. Results and
	// failure tables are deterministic and identical across paths — metrics
	// collection only observes, so -metrics/-progress never change stdout.
	metrics := cliflags.NewMetrics(*metricsTo, *progress, stderr)
	closeMetrics := func() {
		if err := metrics.Close(); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
		}
	}
	cfg := sim.Config{Metrics: metrics.Collector()}
	drain, stopSignals := cliflags.DrainOnSignal("mbpsweep", stderr)
	defer stopSignals()
	sets := make([]*sim.SetResult, len(specs))
	if *jobs == 1 && jnl == nil && *cellTime == 0 {
		// Exact legacy path; the drain wrapper fails unstarted and
		// in-flight traces as resumable once a signal lands.
		drained := sim.DrainSources(sources, drain)
		for i, spec := range specs {
			set, err := sim.RunSetPolicy(drained, newFor(spec), cfg, *workers, policy)
			if err != nil {
				closeMetrics()
				fmt.Fprintf(stderr, "mbpsweep: %s: %v\n", spec, err)
				if errors.Is(err, faults.ErrDrained) {
					return exitDrained
				}
				return exitTotal
			}
			sets[i] = set
		}
	} else {
		preds := make([]sim.PredictorSpec, len(specs))
		for i, spec := range specs {
			preds[i] = sim.PredictorSpec{Name: spec, New: newFor(spec)}
		}
		sets, err = sim.SweepParallel(sources, preds, cfg, sim.ParallelOptions{
			Workers: *jobs, CacheBytes: cliflags.CacheBudget(*cacheBytes), Policy: policy,
			Metrics: metrics.Collector(),
			Journal: jnl, CheckpointEvery: *ckptEvery, Drain: drain, CellTimeout: *cellTime,
		})
		if err != nil {
			closeMetrics()
			fmt.Fprintf(stderr, "mbpsweep: %v\n", err)
			return exitTotal
		}
	}
	closeMetrics()
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(stderr, "mbpsweep: closing resume journal:", err)
		}
	}

	return render(stdout, stderr, specs, sets, len(sources), *jsonOut)
}

// valueRow is one swept value's aggregate in the JSON output.
type valueRow struct {
	Predictor string  `json:"predictor"`
	AvgMPKI   float64 `json:"avg_mpki"`
	Scored    int     `json:"scored"`
	Traces    int     `json:"traces"`
}

// failureRow is one failed trace in the JSON output. It deliberately omits
// the panic stack, which is the one field that differs between sequential
// and parallel execution (the goroutine dumps name different frames), so the
// failures section is byte-identical for any -j.
// Wall time is likewise omitted from JSON: it differs run to run, and the
// JSON output is the machine-diffable format.
type failureRow struct {
	Trace     string `json:"trace"`
	Class     string `json:"class"`
	Message   string `json:"message"`
	Attempts  int    `json:"attempts"`
	Resumable bool   `json:"resumable,omitempty"`
}

// render prints the sweep table (or JSON) and picks the exit code. It only
// sees per-value SetResults, so sequential and parallel schedules produce
// identical bytes.
func render(stdout, stderr io.Writer, specs []string, sets []*sim.SetResult, nTraces int, jsonOut bool) int {
	bestSpec, bestMPKI := "", 0.0
	failed := map[string]sim.TraceFailure{} // trace name -> first failure seen
	anyScored := false
	rows := make([]valueRow, len(specs))
	for i, set := range sets {
		for _, f := range set.Failures {
			if _, ok := failed[f.Trace]; !ok {
				failed[f.Trace] = f
			}
		}
		scored, sum := 0, 0.0
		for _, r := range set.Results {
			if r == nil {
				continue
			}
			scored++
			sum += r.Metrics.MPKI
		}
		rows[i] = valueRow{Predictor: specs[i], Scored: scored, Traces: nTraces}
		if scored == 0 {
			continue
		}
		anyScored = true
		rows[i].AvgMPKI = sum / float64(scored)
		if bestSpec == "" || rows[i].AvgMPKI < bestMPKI {
			bestSpec, bestMPKI = specs[i], rows[i].AvgMPKI
		}
	}
	failNames := make([]string, 0, len(failed))
	for name := range failed {
		failNames = append(failNames, name)
	}
	sort.Strings(failNames)

	if jsonOut {
		failRows := make([]failureRow, 0, len(failNames))
		for _, name := range failNames {
			f := failed[name]
			failRows = append(failRows, failureRow{f.Trace, f.Class, f.Message, f.Attempts, f.Resumable})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Values   []valueRow   `json:"values"`
			Best     string       `json:"best,omitempty"`
			BestMPKI float64      `json:"best_mpki,omitempty"`
			Failures []failureRow `json:"failures,omitempty"`
		}{rows, bestSpec, bestMPKI, failRows}); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
			return exitTotal
		}
	} else {
		fmt.Fprintf(stdout, "%-40s | avg MPKI (traces scored)\n", "predictor")
		fmt.Fprintln(stdout, strings.Repeat("-", 70))
		for _, row := range rows {
			if row.Scored == 0 {
				fmt.Fprintf(stdout, "%-40s | no trace scored\n", row.Predictor)
				continue
			}
			fmt.Fprintf(stdout, "%-40s | %.4f (%d/%d)\n", row.Predictor, row.AvgMPKI, row.Scored, row.Traces)
		}
		fmt.Fprintln(stdout, strings.Repeat("-", 70))
		if bestSpec != "" {
			fmt.Fprintf(stdout, "best: %s (%.4f MPKI)\n", bestSpec, bestMPKI)
		}
		if len(failed) > 0 {
			fmt.Fprintf(stdout, "\n%d failed trace(s), excluded from averages:\n", len(failed))
			fmt.Fprintf(stdout, "%-40s %-10s %-8s %-9s %-9s %s\n", "trace", "class", "attempts", "time", "resumable", "error")
			for _, name := range failNames {
				f := failed[name]
				resumable := "no"
				if f.Resumable {
					resumable = "yes"
				}
				fmt.Fprintf(stdout, "%-40s %-10s %-8d %-9s %-9s %s\n",
					filepath.Base(f.Trace), f.Class, f.Attempts, fmt.Sprintf("%.2fs", f.Seconds), resumable, f.Message)
			}
		}
	}
	anyResumable := false
	for _, f := range failed {
		if f.Resumable {
			anyResumable = true
		}
	}
	switch {
	case len(failed) == 0:
		return exitOK
	case anyResumable:
		// Drained work is not a verdict: re-running with -resume finishes
		// the rest, so the drained code wins over partial/total.
		return exitDrained
	case anyScored:
		return exitPartial
	default:
		return exitTotal
	}
}
