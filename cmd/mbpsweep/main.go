// Command mbpsweep measures how a predictor's MPKI varies with one integer
// parameter across a set of traces — the parameter-optimization use case of
// §VI-A of the MBPlib paper. The CMake for-loop of Listing 3, which builds
// one executable per parameter value, becomes a flag:
//
//	mbpsweep -traces 'traces/*.sbbt.mlz' -predictor 'gshare:t=18,h=%d' -from 6 -to 30
//
// The predictor spec contains a %d placeholder that receives each swept
// value; the output is one row per value with the average MPKI.
//
// Each value's trace set runs through the sim fault policy: with -policy
// skip, traces that fail to decode (or whose predictor panics) are excluded
// from that value's average and reported once in a failure table at the end,
// classified by the faults taxonomy. Transient open errors can be retried
// with -retries and -retry-backoff.
//
// Exit codes: 0 success, 1 usage error, 2 partial failure (some traces
// failed but every value still scored), 3 total failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/prof"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

// Exit codes.
const (
	exitOK      = 0
	exitUsage   = 1
	exitPartial = 2
	exitTotal   = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		globs      = fs.String("traces", "", "glob of SBBT trace files")
		predSpec   = fs.String("predictor", "gshare:t=18,h=%d", "predictor spec with a %d placeholder")
		from       = fs.Int("from", 6, "first swept value")
		to         = fs.Int("to", 30, "last swept value")
		step       = fs.Int("step", 1, "sweep step")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent traces per swept value")
		policyName = fs.String("policy", "failfast", "per-trace failure policy: failfast or skip")
		retries    = fs.Int("retries", 0, "retry transient trace-open failures this many times")
		backoff    = fs.Duration("retry-backoff", 100*time.Millisecond, "delay before the first retry (doubles per attempt)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *globs == "" {
		fmt.Fprintln(stderr, "mbpsweep: -traces is required (see -help)")
		return exitUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
		}
	}()
	if !strings.Contains(*predSpec, "%d") {
		fmt.Fprintf(stderr, "mbpsweep: predictor spec %q has no %%d placeholder\n", *predSpec)
		return exitUsage
	}
	if *step <= 0 || *to < *from {
		fmt.Fprintf(stderr, "mbpsweep: invalid sweep range [%d, %d] step %d\n", *from, *to, *step)
		return exitUsage
	}
	policy := sim.Policy{Retries: *retries, Backoff: *backoff}
	switch *policyName {
	case "failfast":
		policy.Mode = sim.FailFast
	case "skip":
		policy.Mode = sim.SkipFailed
	default:
		fmt.Fprintf(stderr, "mbpsweep: unknown -policy %q (want failfast or skip)\n", *policyName)
		return exitUsage
	}
	if *retries < 0 {
		fmt.Fprintf(stderr, "mbpsweep: -retries must be non-negative, got %d\n", *retries)
		return exitUsage
	}
	paths, err := filepath.Glob(*globs)
	if err != nil {
		fmt.Fprintln(stderr, "mbpsweep:", err)
		return exitUsage
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "mbpsweep: no traces match %q\n", *globs)
		return exitUsage
	}
	sort.Strings(paths)

	sources := make([]sim.TraceSource, len(paths))
	for i, path := range paths {
		sources[i] = sim.TraceSource{Name: path, Open: func() (bp.Reader, io.Closer, error) {
			f, err := compress.OpenFile(path)
			if err != nil {
				return nil, nil, err
			}
			r, err := sbbt.NewReader(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return r, f, nil
		}}
	}

	fmt.Fprintf(stdout, "%-40s | avg MPKI (traces scored)\n", "predictor")
	fmt.Fprintln(stdout, strings.Repeat("-", 70))
	bestSpec, bestMPKI := "", 0.0
	failed := map[string]sim.TraceFailure{} // trace name -> first failure seen
	anyScored := false
	for v := *from; v <= *to; v += *step {
		spec := fmt.Sprintf(*predSpec, v)
		if _, err := registry.New(spec); err != nil {
			fmt.Fprintln(stderr, "mbpsweep:", err)
			return exitUsage
		}
		newPredictor := func() bp.Predictor {
			p, err := registry.New(spec)
			if err != nil {
				panic(err) // validated above; specs are immutable strings
			}
			return p
		}
		set, err := sim.RunSetPolicy(sources, newPredictor, sim.Config{}, *workers, policy)
		if err != nil {
			fmt.Fprintf(stderr, "mbpsweep: %s: %v\n", spec, err)
			return exitTotal
		}
		for _, f := range set.Failures {
			if _, ok := failed[f.Trace]; !ok {
				failed[f.Trace] = f
			}
		}
		scored, sum := 0, 0.0
		for _, r := range set.Results {
			if r == nil {
				continue
			}
			scored++
			sum += r.Metrics.MPKI
		}
		if scored == 0 {
			fmt.Fprintf(stdout, "%-40s | no trace scored\n", spec)
			continue
		}
		anyScored = true
		avg := sum / float64(scored)
		fmt.Fprintf(stdout, "%-40s | %.4f (%d/%d)\n", spec, avg, scored, len(sources))
		if bestSpec == "" || avg < bestMPKI {
			bestSpec, bestMPKI = spec, avg
		}
	}
	fmt.Fprintln(stdout, strings.Repeat("-", 70))
	if bestSpec != "" {
		fmt.Fprintf(stdout, "best: %s (%.4f MPKI)\n", bestSpec, bestMPKI)
	}

	if len(failed) > 0 {
		names := make([]string, 0, len(failed))
		for name := range failed {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "\n%d failed trace(s), excluded from averages:\n", len(failed))
		fmt.Fprintf(stdout, "%-40s %-10s %-8s %s\n", "trace", "class", "attempts", "error")
		for _, name := range names {
			f := failed[name]
			fmt.Fprintf(stdout, "%-40s %-10s %-8d %s\n", filepath.Base(f.Trace), f.Class, f.Attempts, f.Message)
		}
	}
	switch {
	case len(failed) == 0:
		return exitOK
	case anyScored:
		return exitPartial
	default:
		return exitTotal
	}
}
