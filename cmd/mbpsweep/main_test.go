package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"mbplib/internal/bench"
	"mbplib/internal/sbbt"
	"mbplib/internal/tracegen"
)

// cellTimes matches the wall-time column of the text failure table — the one
// legitimately nondeterministic field, scrubbed before byte comparisons.
var cellTimes = regexp.MustCompile(`\d+\.\d\ds`)

func scrubTimes(b []byte) []byte { return cellTimes.ReplaceAll(b, []byte("X.XXs")) }

// writeCorruptTrace writes a checksummed SBBT trace with a bit flipped in
// its final chunk, so it decodes some events and then fails as corrupt.
func writeCorruptTrace(t *testing.T, path string) {
	t.Helper()
	spec := tracegen.Spec{
		Name: "corrupt", Seed: 5, Branches: 3000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Biased}, {Kind: tracegen.Loop}},
	}
	instr, branches, err := tracegen.Totals(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := sbbt.NewChecksumWriter(&buf, instr, branches)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := g.Read()
		if err != nil {
			break
		}
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-10] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// prepTraces materialises a small healthy suite plus (optionally) corrupt
// traces, returning a glob matching all of them.
func prepTraces(t *testing.T, healthy bool, corrupt int) string {
	t.Helper()
	dir := t.TempDir()
	if healthy {
		if _, err := bench.PrepareSuite(dir, "cbp5-train", 2000, bench.Formats{SBBT: true}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < corrupt; i++ {
		writeCorruptTrace(t, filepath.Join(dir, "zz-corrupt-"+string(rune('a'+i))+".sbbt"))
	}
	return filepath.Join(dir, "*.sbbt*")
}

// TestSweepExitCodesAndJSONParallelEquivalence is the satellite-5 table: for
// every failure scenario, -j 4 must produce the same exit code and the same
// stdout bytes (table and JSON, failures section included) as the -j 1
// legacy path — including exit 2 (partial) with interleaved worker failures.
func TestSweepExitCodesAndJSONParallelEquivalence(t *testing.T) {
	base := []string{"-predictor", "gshare:t=12,h=%d", "-from", "4", "-to", "6"}
	for _, tc := range []struct {
		name     string
		healthy  bool
		corrupt  int
		extra    []string
		wantCode int
	}{
		{"all-healthy", true, 0, []string{"-policy", "skip"}, 0},
		{"partial-skip", true, 2, []string{"-policy", "skip"}, 2},
		{"total-skip", false, 2, []string{"-policy", "skip"}, 3},
		{"failfast-corrupt", true, 1, []string{"-policy", "failfast"}, 3},
	} {
		for _, jsonOut := range []bool{false, true} {
			name := tc.name
			if jsonOut {
				name += "-json"
			}
			t.Run(name, func(t *testing.T) {
				glob := prepTraces(t, tc.healthy, tc.corrupt)
				args := append([]string{"-traces", glob}, base...)
				args = append(args, tc.extra...)
				if jsonOut {
					args = append(args, "-json")
				}

				var seqOut, seqErr bytes.Buffer
				seqCode := run(append(args, "-j", "1"), &seqOut, &seqErr)
				var parOut, parErr bytes.Buffer
				parCode := run(append(args, "-j", "4"), &parOut, &parErr)

				if seqCode != tc.wantCode {
					t.Errorf("-j 1 exit = %d, want %d (stderr: %s)", seqCode, tc.wantCode, seqErr.String())
				}
				if parCode != tc.wantCode {
					t.Errorf("-j 4 exit = %d, want %d (stderr: %s)", parCode, tc.wantCode, parErr.String())
				}
				if !bytes.Equal(scrubTimes(seqOut.Bytes()), scrubTimes(parOut.Bytes())) {
					t.Errorf("stdout differs between -j 1 and -j 4\nseq:\n%s\npar:\n%s", seqOut.String(), parOut.String())
				}
				if jsonOut && tc.wantCode != 3 {
					var doc struct {
						Values   []valueRow   `json:"values"`
						Failures []failureRow `json:"failures"`
					}
					if err := json.Unmarshal(parOut.Bytes(), &doc); err != nil {
						t.Fatalf("parallel output is not JSON: %v", err)
					}
					if len(doc.Values) != 3 {
						t.Errorf("values = %d, want 3", len(doc.Values))
					}
					if wantFail := tc.corrupt; len(doc.Failures) != wantFail {
						t.Errorf("failures = %d, want %d", len(doc.Failures), wantFail)
					}
				}
			})
		}
	}
}

// TestSweepUsageErrors: bad flags exit 1 before any simulation runs.
func TestSweepUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{}, // -traces missing
		{"-traces", "x", "-from", "9", "-to", "3"}, // empty range
		{"-traces", "x", "-predictor", "gshare"},   // no %d
		{"-traces", "x", "-policy", "bogus"},
		{"-traces", "x", "-checkpoint-every", "4096"}, // requires -resume
		{"-traces", "x", "-cell-timeout", "-1s"},
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}
