package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"mbplib/internal/bench"
)

// helperEnv carries the mbpsweep argument vector (unit-separated) into a
// re-exec'd copy of this test binary; TestMain intercepts it and runs the
// real command instead of the test suite. That gives the kill-and-resume
// test a genuine child process to signal and SIGKILL.
const helperEnv = "MBPSWEEP_HELPER_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(helperEnv); args != "" {
		os.Exit(run(strings.Split(args, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// waitForJournal blocks until the resume journal holds at least one
// committed record (segment bigger than its magic by a real frame), so the
// signal lands mid-sweep, after crash safety has something to protect.
func waitForJournal(t *testing.T, dir string, done <-chan error) {
	t.Helper()
	seg := filepath.Join(dir, "journal-000000.mbpj")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("sweep exited before the signal could land: %v", err)
		default:
		}
		if fi, err := os.Stat(seg); err == nil && fi.Size() > 200 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("journal %s never saw a committed cell", seg)
}

// TestSweepKillAndResume is the crash-safety acceptance test: a sweep
// interrupted by SIGTERM (graceful drain, exit 4) or SIGKILL (no chance to
// clean up) and re-run with the same -resume journal must finish with
// byte-identical stdout to a sweep that was never interrupted — at -j 1 and
// -j 4 both.
func TestSweepKillAndResume(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("signal-driven test")
	}
	traceDir := t.TempDir()
	if _, err := bench.PrepareSuite(traceDir, "cbp5-train", 60_000, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	base := []string{
		"-traces", filepath.Join(traceDir, "*.sbbt*"),
		"-predictor", "gshare:t=14,h=%d", "-from", "4", "-to", "12",
		"-policy", "skip",
	}

	// The uninterrupted reference, in-process.
	var want bytes.Buffer
	if code := run(append(append([]string{}, base...), "-j", "4"), &want, io.Discard); code != exitOK {
		t.Fatalf("uninterrupted sweep exited %d", code)
	}

	for _, tc := range []struct {
		name string
		sig  syscall.Signal
		j    string
	}{
		{"sigterm-j4", syscall.SIGTERM, "4"},
		{"sigterm-j1", syscall.SIGTERM, "1"},
		{"sigkill-j4", syscall.SIGKILL, "4"},
		{"sigkill-j1", syscall.SIGKILL, "1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jdir := t.TempDir()
			args := append(append([]string{}, base...),
				"-resume", jdir, "-checkpoint-every", "4096", "-j", tc.j)
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, "\x1f"))
			var childOut, childErr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &childOut, &childErr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			waitForJournal(t, jdir, done)
			if err := cmd.Process.Signal(tc.sig); err != nil {
				t.Fatal(err)
			}
			err := <-done
			switch tc.sig {
			case syscall.SIGTERM:
				// Graceful drain: unfinished cells are resumable, exit 4.
				if code := cmd.ProcessState.ExitCode(); code != exitDrained {
					t.Fatalf("SIGTERM exit = %d (err %v), want %d\nstderr: %s",
						code, err, exitDrained, childErr.String())
				}
			case syscall.SIGKILL:
				if cmd.ProcessState.ExitCode() != -1 {
					t.Fatalf("SIGKILL did not kill: state %v", cmd.ProcessState)
				}
			}

			var got bytes.Buffer
			resumeArgs := append(append([]string{}, base...), "-resume", jdir, "-j", tc.j)
			if code := run(resumeArgs, &got, io.Discard); code != exitOK {
				t.Fatalf("resumed sweep exited %d", code)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("resumed stdout differs from the uninterrupted sweep\nresumed:\n%s\nuninterrupted:\n%s",
					got.String(), want.String())
			}
		})
	}
}
