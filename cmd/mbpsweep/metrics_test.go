package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbplib/internal/obs"
	"mbplib/internal/sbbt"
	"mbplib/internal/tracegen"
)

// writeHealthyTrace materialises one synthetic trace as an SBBT file.
func writeHealthyTrace(t *testing.T, path string, spec tracegen.Spec) {
	t.Helper()
	instr, branches, err := tracegen.Totals(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := sbbt.NewWriter(f, instr, branches)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := g.Read()
		if err != nil {
			break
		}
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepMetricsAndProgress is the acceptance criterion of the
// observability layer: on a 4 traces × 4 values matrix, -metrics -progress
// must leave stdout byte-identical to an uninstrumented run while the
// metrics JSON carries non-zero stage timings, cache hit/miss counts and
// per-worker utilisation, and the progress line lands on stderr.
func TestSweepMetricsAndProgress(t *testing.T) {
	dir := t.TempDir()
	specs, err := tracegen.Suite("cbp5-train", 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs[:4] {
		writeHealthyTrace(t, filepath.Join(dir, spec.Name+".sbbt"), spec)
	}
	base := []string{
		"-traces", filepath.Join(dir, "*.sbbt"),
		"-predictor", "gshare:t=12,h=%d", "-from", "4", "-to", "7",
		"-j", "4", "-json",
	}

	var plainOut, plainErr bytes.Buffer
	if code := run(base, &plainOut, &plainErr); code != exitOK {
		t.Fatalf("plain run exit = %d (stderr: %s)", code, plainErr.String())
	}

	metricsPath := filepath.Join(dir, "metrics.json")
	var out, errBuf bytes.Buffer
	args := append(append([]string{}, base...), "-metrics", metricsPath, "-progress")
	if code := run(args, &out, &errBuf); code != exitOK {
		t.Fatalf("instrumented run exit = %d (stderr: %s)", code, errBuf.String())
	}

	if !bytes.Equal(plainOut.Bytes(), out.Bytes()) {
		t.Errorf("-metrics -progress changed stdout\nplain:\n%s\ninstrumented:\n%s",
			plainOut.String(), out.String())
	}
	if !strings.Contains(errBuf.String(), "16/16 cells") {
		t.Errorf("stderr missing final progress line: %q", errBuf.String())
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("reading metrics file: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not a snapshot: %v\n%s", err, data)
	}
	if snap.Version != obs.SnapshotVersion {
		t.Errorf("metrics_version = %d, want %d", snap.Version, obs.SnapshotVersion)
	}
	for _, stage := range []string{"read", "sim"} {
		if s := snap.Stages[stage]; s.Count == 0 || s.Seconds <= 0 {
			t.Errorf("stage %q = %+v, want non-zero time", stage, s)
		}
	}
	// 4 traces × 4 values, trace-major: each trace decodes once (miss) and
	// is shared by the other three values (hits).
	if got := snap.Counters["cache_misses"]; got != 4 {
		t.Errorf("cache_misses = %d, want 4", got)
	}
	if got := snap.Counters["cache_hits"]; got != 12 {
		t.Errorf("cache_hits = %d, want 12", got)
	}
	if snap.Counters["cells_done"] != 16 || snap.Counters["cells_total"] != 16 {
		t.Errorf("cells = %d/%d, want 16/16",
			snap.Counters["cells_done"], snap.Counters["cells_total"])
	}
	if snap.Counters["events"] == 0 {
		t.Error("no events counted")
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(snap.Workers))
	}
	var cells uint64
	var busy, util float64
	for _, w := range snap.Workers {
		cells += w.Cells
		busy += w.BusySeconds
		util += w.Utilization
	}
	if cells != 16 {
		t.Errorf("worker cells sum = %d, want 16", cells)
	}
	if busy <= 0 || util <= 0 {
		t.Errorf("no worker utilisation recorded: %+v", snap.Workers)
	}
}

// TestSweepMetricsToStderr: '-metrics -' interleaves nothing with stdout —
// the snapshot goes to stderr and stdout stays byte-identical.
func TestSweepMetricsToStderr(t *testing.T) {
	dir := t.TempDir()
	specs, err := tracegen.Suite("cbp5-train", 1000)
	if err != nil {
		t.Fatal(err)
	}
	writeHealthyTrace(t, filepath.Join(dir, specs[0].Name+".sbbt"), specs[0])
	base := []string{
		"-traces", filepath.Join(dir, "*.sbbt"),
		"-predictor", "gshare:t=12,h=%d", "-from", "4", "-to", "5", "-j", "2",
	}
	var plainOut, plainErr bytes.Buffer
	if code := run(base, &plainOut, &plainErr); code != exitOK {
		t.Fatalf("plain run exit = %d (stderr: %s)", code, plainErr.String())
	}
	var out, errBuf bytes.Buffer
	if code := run(append(append([]string{}, base...), "-metrics", "-"), &out, &errBuf); code != exitOK {
		t.Fatalf("instrumented run exit = %d (stderr: %s)", code, errBuf.String())
	}
	if !bytes.Equal(plainOut.Bytes(), out.Bytes()) {
		t.Errorf("-metrics - changed stdout")
	}
	if !strings.Contains(errBuf.String(), `"metrics_version": 1`) {
		t.Errorf("stderr missing metrics snapshot: %q", errBuf.String())
	}
}
