// Command mbpcmp runs two predictors in parallel over one SBBT trace (the
// comparison simulator of §VI-C of the MBPlib paper) and prints a JSON
// report whose most_failed section lists the branches with the biggest MPKI
// difference — which branches the second predictor handles better, and
// whether any got worse.
//
// Usage:
//
//	mbpcmp -trace t.sbbt.mlz -p0 tage -p1 batage
//
// Exit codes: 0 success, 1 usage error, 3 run failure (the stderr message
// carries the faults taxonomy class of a classified trace error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
	"mbplib/internal/faults"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

// Exit codes.
const (
	exitOK    = 0
	exitUsage = 1
	exitTotal = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath = fs.String("trace", "", "SBBT trace file (raw, .gz or .mlz)")
		spec0     = fs.String("p0", "bimodal", "first predictor spec")
		spec1     = fs.String("p1", "gshare", "second predictor spec")
		warmup    = fs.Uint64("warmup", 0, "warm-up instructions")
		simInstr  = fs.Uint64("sim", 0, "instructions to simulate after warm-up (0 = whole trace)")
		mostN     = fs.Int("most-failed", 20, "entries in the most_failed diff report")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *tracePath == "" {
		fmt.Fprintln(stderr, "mbpcmp: -trace is required (see -help)")
		return exitUsage
	}
	p0, err := registry.New(*spec0)
	if err != nil {
		fmt.Fprintln(stderr, "mbpcmp: p0:", err)
		return exitUsage
	}
	p1, err := registry.New(*spec1)
	if err != nil {
		fmt.Fprintln(stderr, "mbpcmp: p1:", err)
		return exitUsage
	}
	if err := compare(*tracePath, p0, p1, sim.Config{
		TraceName:          *tracePath,
		WarmupInstructions: *warmup,
		SimInstructions:    *simInstr,
		MostFailedLimit:    *mostN,
	}, stdout); err != nil {
		if class := faults.Class(err); class != "other" {
			fmt.Fprintf(stderr, "mbpcmp: [%s] %v\n", class, err)
		} else {
			fmt.Fprintln(stderr, "mbpcmp:", err)
		}
		return exitTotal
	}
	return exitOK
}

// compare opens the trace, runs the comparison simulation, and writes the
// JSON report.
func compare(tracePath string, p0, p1 bp.Predictor, cfg sim.Config, stdout io.Writer) error {
	f, err := compress.OpenFile(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := sbbt.NewReader(f)
	if err != nil {
		return err
	}
	res, err := sim.Compare(r, p0, p1, cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
