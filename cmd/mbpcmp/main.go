// Command mbpcmp runs two predictors in parallel over one SBBT trace (the
// comparison simulator of §VI-C of the MBPlib paper) and prints a JSON
// report whose most_failed section lists the branches with the biggest MPKI
// difference — which branches the second predictor handles better, and
// whether any got worse.
//
// Usage:
//
//	mbpcmp -trace t.sbbt.mlz -p0 tage -p1 batage
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mbplib/internal/compress"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "SBBT trace file (raw, .gz or .mlz)")
		spec0     = flag.String("p0", "bimodal", "first predictor spec")
		spec1     = flag.String("p1", "gshare", "second predictor spec")
		warmup    = flag.Uint64("warmup", 0, "warm-up instructions")
		simInstr  = flag.Uint64("sim", 0, "instructions to simulate after warm-up (0 = whole trace)")
		mostN     = flag.Int("most-failed", 20, "entries in the most_failed diff report")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "mbpcmp: -trace is required (see -help)")
		os.Exit(2)
	}
	if err := run(*tracePath, *spec0, *spec1, *warmup, *simInstr, *mostN); err != nil {
		fmt.Fprintln(os.Stderr, "mbpcmp:", err)
		os.Exit(1)
	}
}

func run(tracePath, spec0, spec1 string, warmup, simInstr uint64, mostN int) error {
	p0, err := registry.New(spec0)
	if err != nil {
		return fmt.Errorf("p0: %w", err)
	}
	p1, err := registry.New(spec1)
	if err != nil {
		return fmt.Errorf("p1: %w", err)
	}
	f, err := compress.OpenFile(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := sbbt.NewReader(f)
	if err != nil {
		return err
	}
	res, err := sim.Compare(r, p0, p1, sim.Config{
		TraceName:          tracePath,
		WarmupInstructions: warmup,
		SimInstructions:    simInstr,
		MostFailedLimit:    mostN,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
