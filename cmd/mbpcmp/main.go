// Command mbpcmp runs two predictors in parallel over SBBT traces (the
// comparison simulator of §VI-C of the MBPlib paper) and prints a JSON
// report whose most_failed section lists the branches with the biggest MPKI
// difference — which branches the second predictor handles better, and
// whether any got worse.
//
// Usage:
//
//	mbpcmp -trace t.sbbt.mlz -p0 tage -p1 batage
//	mbpcmp -trace 'traces/*.sbbt.mlz' -p0 tage -p1 batage -j 4
//
// -trace is a glob: a single match prints one JSON object (the historical
// format), several matches print a JSON array in sorted path order, compared
// across -j workers (default GOMAXPROCS). A comparison interleaves two
// predictors over one pass of the trace, so each worker streams its own
// trace and no decoded-trace cache is involved.
//
// SIGINT/SIGTERM drain gracefully: comparisons not yet started are skipped
// and reported as drained, in-flight ones finish, and the command exits 4;
// a second signal aborts immediately.
//
// Exit codes: 0 success, 1 usage error, 3 run failure (the stderr message
// carries the faults taxonomy class of a classified trace error), 4 drained
// (interrupted before every comparison ran).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"mbplib/internal/bp"
	"mbplib/internal/cliflags"
	"mbplib/internal/compress"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

// Exit codes.
const (
	exitOK      = 0
	exitUsage   = 1
	exitTotal   = 3
	exitDrained = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceGlob = fs.String("trace", "", "SBBT trace file or glob (raw, .gz or .mlz)")
		spec0     = fs.String("p0", "bimodal", "first predictor spec")
		spec1     = fs.String("p1", "gshare", "second predictor spec")
		warmup    = fs.Uint64("warmup", 0, "warm-up instructions")
		simInstr  = fs.Uint64("sim", 0, "instructions to simulate after warm-up (0 = whole trace)")
		mostN     = fs.Int("most-failed", 20, "entries in the most_failed diff report")
		jobs      = fs.Int("j", runtime.GOMAXPROCS(0), "concurrent trace comparisons")
		metricsTo = fs.String("metrics", "", "write a pipeline metrics JSON snapshot to this file ('-' = stderr)")
		progress  = fs.Bool("progress", false, "render a live progress line on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *traceGlob == "" {
		fmt.Fprintln(stderr, "mbpcmp: -trace is required (see -help)")
		return exitUsage
	}
	// The shared validation table, same order and messages as every CLI.
	if err := cliflags.Validate(
		cliflags.Workers(*jobs),
	); err != nil {
		fmt.Fprintln(stderr, "mbpcmp:", err)
		return exitUsage
	}
	// Validate both specs once before fanning out.
	for _, s := range []struct{ name, spec string }{{"p0", *spec0}, {"p1", *spec1}} {
		if _, err := registry.New(s.spec); err != nil {
			fmt.Fprintf(stderr, "mbpcmp: %s: %v\n", s.name, err)
			return exitUsage
		}
	}
	paths, err := filepath.Glob(*traceGlob)
	if err != nil {
		fmt.Fprintln(stderr, "mbpcmp:", err)
		return exitUsage
	}
	if len(paths) == 0 {
		// Not a glob match but maybe a literal path: surface the open error.
		paths = []string{*traceGlob}
	}
	sort.Strings(paths)

	cfgFor := func(path string) sim.Config {
		return sim.Config{
			TraceName:          path,
			WarmupInstructions: *warmup,
			SimInstructions:    *simInstr,
			MostFailedLimit:    *mostN,
		}
	}

	// Compare every trace across a worker pool. Each comparison constructs
	// fresh predictor instances (predictors are stateful) and streams its own
	// trace; results are collected index-aligned so output order is the
	// sorted path order regardless of completion order.
	metrics := cliflags.NewMetrics(*metricsTo, *progress, stderr)
	col := metrics.Collector()
	col.Ctr(obs.CtrCellsTotal).Store(uint64(len(paths)))
	results := make([]*sim.CompareResult, len(paths))
	errs := make([]error, len(paths))
	workers := *jobs
	if workers > len(paths) {
		workers = len(paths)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		ws := col.Worker(w)
		go func() {
			defer wg.Done()
			for i := range next {
				tCell := col.Now()
				results[i], errs[i] = compareOne(paths[i], *spec0, *spec1, cfgFor(paths[i]))
				cellDur := col.Now().Sub(tCell)
				ws.Record(cellDur)
				col.Hist(obs.HistCellNs).ObserveDuration(cellDur)
				col.Ctr(obs.CtrCellsDone).Add(1)
			}
		}()
	}
	drain, stopSignals := cliflags.DrainOnSignal("mbpcmp", stderr)
	defer stopSignals()
	for i := range paths {
		admitted := false
		select {
		case next <- i:
			admitted = true
		case <-drain:
		}
		if !admitted {
			// Draining: in-flight comparisons finish, the rest never start.
			for j := i; j < len(paths); j++ {
				errs[j] = fmt.Errorf("not started: %w", faults.ErrDrained)
			}
			break
		}
	}
	close(next)
	wg.Wait()
	if err := metrics.Close(); err != nil {
		fmt.Fprintln(stderr, "mbpcmp:", err)
	}

	failed, drained := 0, 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failed++
		if errors.Is(err, faults.ErrDrained) {
			drained++
		}
		if class := faults.Class(err); class != "other" {
			fmt.Fprintf(stderr, "mbpcmp: %s: [%s] %v\n", paths[i], class, err)
		} else {
			fmt.Fprintf(stderr, "mbpcmp: %s: %v\n", paths[i], err)
		}
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if len(paths) == 1 {
		// Historical single-trace format: one bare object.
		if errs[0] != nil {
			if drained > 0 {
				return exitDrained
			}
			return exitTotal
		}
		if err := enc.Encode(results[0]); err != nil {
			fmt.Fprintln(stderr, "mbpcmp:", err)
			return exitTotal
		}
		return exitOK
	}
	ok := make([]*sim.CompareResult, 0, len(results))
	for _, r := range results {
		if r != nil {
			ok = append(ok, r)
		}
	}
	if err := enc.Encode(ok); err != nil {
		fmt.Fprintln(stderr, "mbpcmp:", err)
		return exitTotal
	}
	if drained > 0 {
		return exitDrained
	}
	if failed > 0 {
		return exitTotal
	}
	return exitOK
}

// compareOne opens one trace and runs the two-predictor comparison.
func compareOne(tracePath, spec0, spec1 string, cfg sim.Config) (*sim.CompareResult, error) {
	p0, err := registry.New(spec0)
	if err != nil {
		return nil, err
	}
	p1, err := registry.New(spec1)
	if err != nil {
		return nil, err
	}
	return compare(tracePath, p0, p1, cfg)
}

// compare opens the trace and runs the comparison simulation.
func compare(tracePath string, p0, p1 bp.Predictor, cfg sim.Config) (*sim.CompareResult, error) {
	f, err := compress.OpenFile(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := sbbt.NewReader(f)
	if err != nil {
		return nil, err
	}
	return sim.Compare(r, p0, p1, cfg)
}
