package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"mbplib/internal/bench"
)

// TestCmpGlobParallel: a multi-trace glob prints a JSON array in sorted path
// order, identically for -j 1 and -j 4; a single trace keeps the historical
// bare-object format.
func TestCmpGlobParallel(t *testing.T) {
	dir := t.TempDir()
	ts, err := bench.PrepareSuite(dir, "cbp5-train", 1500, bench.Formats{SBBT: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.SBBT) < 2 {
		t.Fatalf("suite too small: %d traces", len(ts.SBBT))
	}
	args := []string{"-trace", filepath.Join(dir, "*.sbbt.mlz"), "-p0", "bimodal", "-p1", "gshare"}

	var seqOut, seqErr bytes.Buffer
	if code := run(append(args, "-j", "1"), &seqOut, &seqErr); code != 0 {
		t.Fatalf("-j 1 exit %d: %s", code, seqErr.String())
	}
	var parOut, parErr bytes.Buffer
	if code := run(append(args, "-j", "4"), &parOut, &parErr); code != 0 {
		t.Fatalf("-j 4 exit %d: %s", code, parErr.String())
	}
	// Zero the per-trace wall clock before comparing: it is the only
	// nondeterministic field.
	normalize := func(out []byte) []byte {
		var arr []map[string]any
		if err := json.Unmarshal(out, &arr); err != nil {
			t.Fatalf("multi-trace output is not a JSON array: %v", err)
		}
		for _, obj := range arr {
			obj["simulation_time"] = 0.0
		}
		norm, err := json.Marshal(arr)
		if err != nil {
			t.Fatal(err)
		}
		return norm
	}
	if !bytes.Equal(normalize(seqOut.Bytes()), normalize(parOut.Bytes())) {
		t.Error("mbpcmp output differs between -j 1 and -j 4")
	}
	var arr []map[string]any
	if err := json.Unmarshal(parOut.Bytes(), &arr); err != nil {
		t.Fatalf("multi-trace output is not a JSON array: %v", err)
	}
	if len(arr) != len(ts.SBBT) {
		t.Errorf("array has %d entries, want %d", len(arr), len(ts.SBBT))
	}

	var one bytes.Buffer
	if code := run([]string{"-trace", ts.SBBT[0], "-p0", "bimodal", "-p1", "gshare"}, &one, &seqErr); code != 0 {
		t.Fatalf("single-trace exit %d: %s", code, seqErr.String())
	}
	var obj map[string]any
	if err := json.Unmarshal(one.Bytes(), &obj); err != nil {
		t.Fatalf("single-trace output is not a JSON object: %v", err)
	}
}

// TestCmpMissingTrace: an unmatched literal path is a run failure (exit 3),
// not a usage error, with the open error on stderr.
func TestCmpMissingTrace(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-trace", filepath.Join(t.TempDir(), "nope.sbbt")}, &out, &errBuf); code != exitTotal {
		t.Errorf("exit = %d, want %d", code, exitTotal)
	}
	if errBuf.Len() == 0 {
		t.Error("no error message on stderr")
	}
}
