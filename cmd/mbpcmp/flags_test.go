package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlagValidation: bad -j values must be rejected as usage errors with a
// message naming the flag, before any trace is opened — never silently
// clamped.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"j zero", []string{"-trace", "nope.sbbt", "-j", "0"}, "-j must be >= 1"},
		{"j negative", []string{"-trace", "nope.sbbt", "-j", "-2"}, "-j must be >= 1"},
		{"missing trace", []string{"-j", "2"}, "-trace is required"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != exitUsage {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitUsage, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.wantErr)
			}
			if stdout.Len() != 0 {
				t.Errorf("usage error wrote to stdout: %q", stdout.String())
			}
		})
	}
}
