// Command mbpbench regenerates the tables of the MBPlib paper's evaluation
// (§VII) on synthetic trace suites and prints them as Markdown.
//
// Usage:
//
//	mbpbench -table 1             # trace-set size reduction (Table I)
//	mbpbench -table 3             # simulation time vs CBP5 framework and ChampSim-style model
//	mbpbench -table 4             # CBP5 framework with gzip vs MLZ traces
//	mbpbench -table all -scale 50000
//	mbpbench -sim-snapshot BENCH_sim.json -scale 2000000
//
// -sim-snapshot skips the tables and instead records the scalar-vs-batched
// pipeline comparison (decode stage and full runs) as JSON.
//
// Scale is the branch count of a short trace; the paper's absolute times
// used 100M-instruction traces, far above what a quick run needs — the
// shape of every table is scale-independent.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mbplib/internal/bench"
)

func main() {
	var (
		table      = flag.String("table", "all", "table to regenerate: 1, 3, 4 or all")
		scale      = flag.Uint64("scale", 50_000, "branches in a short trace")
		dir        = flag.String("dir", "", "trace directory (default: a temporary one)")
		maxInstr   = flag.Uint64("champsim-instr", 0, "instruction cap for the cycle-level runs (0 = whole trace)")
		snapshot   = flag.String("sim-snapshot", "", "write the scalar-vs-batched pipeline comparison to this JSON file instead of printing tables")
		predictors = flag.String("sim-predictors", "bimodal,gshare,tage", "comma-separated predictor specs for the snapshot's full runs")
		rounds     = flag.Int("sim-rounds", 3, "measurement rounds per snapshot variant (best is kept)")
	)
	flag.Parse()
	var err error
	if *snapshot != "" {
		err = runSnapshot(*snapshot, *scale, *dir, *predictors, *rounds)
	} else {
		err = run(*table, *scale, *dir, *maxInstr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbpbench:", err)
		os.Exit(1)
	}
}

// runSnapshot materialises one SBBT trace of the requested scale and
// records the scalar-vs-batched comparison over it.
func runSnapshot(out string, scale uint64, dir, predictors string, rounds int) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mbpbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{SBBT: true})
	if err != nil {
		return err
	}
	if len(ts.SBBT) == 0 {
		return fmt.Errorf("suite produced no SBBT traces")
	}
	snap, err := bench.MeasureSim(ts.SBBT[0], strings.Split(predictors, ","), rounds)
	if err != nil {
		return err
	}
	// The trace lives in a throwaway directory; record just its base name.
	snap.Trace = filepath.Base(snap.Trace)
	if err := bench.WriteSimSnapshot(out, snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s: decode %.2fx", out, snap.Read.Speedup)
	for _, e := range snap.Sim {
		fmt.Printf(", %s %.2fx", e.Predictor, e.Speedup)
	}
	fmt.Println()
	return nil
}

func run(table string, scale uint64, dir string, maxInstr uint64) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mbpbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if table == "1" || table == "all" {
		fmt.Println("## Table I: size reduction of the translated trace sets")
		fmt.Println()
		rows, err := bench.TableI(dir, scale)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTableI(rows))
	}
	if table == "3" || table == "all" {
		fmt.Println("## Table III (top): MBPlib vs the CBP5 framework")
		fmt.Println()
		ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{SBBT: true, BT9Gz: true})
		if err != nil {
			return err
		}
		rows, err := bench.TableIIITop(ts)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTimingRows(rows, "CBP5", "MBPlib"))

		fmt.Println("## Table III (bottom): MBPlib vs the ChampSim-style cycle-level model")
		fmt.Println()
		dp, err := bench.PrepareSuite(dir, "dpc3", scale, bench.Formats{SBBT: true, CSTGz: true})
		if err != nil {
			return err
		}
		rows, err = bench.TableIIIBottom(dp, maxInstr)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTimingRows(rows, "ChampSim", "MBPlib"))
	}
	if table == "4" || table == "all" {
		fmt.Println("## Table IV: speedup of the CBP5 framework from the compression method alone")
		fmt.Println()
		ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{BT9Gz: true, BT9MLZ: true})
		if err != nil {
			return err
		}
		rows, err := bench.TableIV(ts)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTableIV(rows))
	}
	return nil
}
