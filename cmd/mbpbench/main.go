// Command mbpbench regenerates the tables of the MBPlib paper's evaluation
// (§VII) on synthetic trace suites and prints them as Markdown.
//
// Usage:
//
//	mbpbench -table 1             # trace-set size reduction (Table I)
//	mbpbench -table 3             # simulation time vs CBP5 framework and ChampSim-style model
//	mbpbench -table 4             # CBP5 framework with gzip vs MLZ traces
//	mbpbench -table all -scale 50000
//
// Scale is the branch count of a short trace; the paper's absolute times
// used 100M-instruction traces, far above what a quick run needs — the
// shape of every table is scale-independent.
package main

import (
	"flag"
	"fmt"
	"os"

	"mbplib/internal/bench"
)

func main() {
	var (
		table    = flag.String("table", "all", "table to regenerate: 1, 3, 4 or all")
		scale    = flag.Uint64("scale", 50_000, "branches in a short trace")
		dir      = flag.String("dir", "", "trace directory (default: a temporary one)")
		maxInstr = flag.Uint64("champsim-instr", 0, "instruction cap for the cycle-level runs (0 = whole trace)")
	)
	flag.Parse()
	if err := run(*table, *scale, *dir, *maxInstr); err != nil {
		fmt.Fprintln(os.Stderr, "mbpbench:", err)
		os.Exit(1)
	}
}

func run(table string, scale uint64, dir string, maxInstr uint64) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mbpbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if table == "1" || table == "all" {
		fmt.Println("## Table I: size reduction of the translated trace sets")
		fmt.Println()
		rows, err := bench.TableI(dir, scale)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTableI(rows))
	}
	if table == "3" || table == "all" {
		fmt.Println("## Table III (top): MBPlib vs the CBP5 framework")
		fmt.Println()
		ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{SBBT: true, BT9Gz: true})
		if err != nil {
			return err
		}
		rows, err := bench.TableIIITop(ts)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTimingRows(rows, "CBP5", "MBPlib"))

		fmt.Println("## Table III (bottom): MBPlib vs the ChampSim-style cycle-level model")
		fmt.Println()
		dp, err := bench.PrepareSuite(dir, "dpc3", scale, bench.Formats{SBBT: true, CSTGz: true})
		if err != nil {
			return err
		}
		rows, err = bench.TableIIIBottom(dp, maxInstr)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTimingRows(rows, "ChampSim", "MBPlib"))
	}
	if table == "4" || table == "all" {
		fmt.Println("## Table IV: speedup of the CBP5 framework from the compression method alone")
		fmt.Println()
		ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{BT9Gz: true, BT9MLZ: true})
		if err != nil {
			return err
		}
		rows, err := bench.TableIV(ts)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTableIV(rows))
	}
	return nil
}
