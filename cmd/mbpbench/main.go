// Command mbpbench regenerates the tables of the MBPlib paper's evaluation
// (§VII) on synthetic trace suites and prints them as Markdown.
//
// Usage:
//
//	mbpbench -table 1             # trace-set size reduction (Table I)
//	mbpbench -table 3             # simulation time vs CBP5 framework and ChampSim-style model
//	mbpbench -table 4             # CBP5 framework with gzip vs MLZ traces
//	mbpbench -table all -scale 50000
//	mbpbench -sim-snapshot BENCH_sim.json -scale 2000000
//	mbpbench -sim-check BENCH_sim.json -scale 200000
//
// -sim-snapshot skips the tables and instead records the scalar-vs-batched
// pipeline comparison (decode stage and full runs), the parallel-sweep
// scaling curve, the resume-journal write overhead and the seekable
// container's parallel chunk-decode curve as JSON. -sim-check re-measures the same stages at the given
// (usually reduced) scale and fails on a gross throughput regression against
// the committed snapshot — the soft gate behind `make bench-check`.
//
// Scale is the branch count of a short trace; the paper's absolute times
// used 100M-instruction traces, far above what a quick run needs — the
// shape of every table is scale-independent.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mbplib/internal/bench"
	"mbplib/internal/cliflags"
)

func main() {
	var (
		table      = flag.String("table", "all", "table to regenerate: 1, 3, 4 or all")
		scale      = flag.Uint64("scale", 50_000, "branches in a short trace")
		dir        = flag.String("dir", "", "trace directory (default: a temporary one)")
		maxInstr   = flag.Uint64("champsim-instr", 0, "instruction cap for the cycle-level runs (0 = whole trace)")
		snapshot   = flag.String("sim-snapshot", "", "write the scalar-vs-batched pipeline comparison to this JSON file instead of printing tables")
		check      = flag.String("sim-check", "", "re-measure the snapshot stages and fail on a gross throughput regression against this committed JSON file")
		predictors = flag.String("sim-predictors", "bimodal,gshare,tage", "comma-separated predictor specs for the snapshot's full runs")
		sweepPreds = flag.String("sweep-predictors", "always-taken,bimodal,gshare,bimodal:t=12", "comma-separated predictor specs for the parallel-sweep stage")
		sweepSize  = flag.Int("sweep-traces", 4, "traces in the parallel-sweep matrix")
		rounds     = flag.Int("sim-rounds", 3, "measurement rounds per snapshot variant (best is kept)")
		factor     = flag.Float64("check-factor", 2, "allowed throughput regression factor for -sim-check")
		metricsTo  = flag.String("metrics", "", "write a session-wide pipeline metrics JSON snapshot to this file ('-' = stderr)")
		progress   = flag.Bool("progress", false, "render a live progress line on stderr")
	)
	flag.Parse()
	metrics := cliflags.NewMetrics(*metricsTo, *progress, os.Stderr)
	bench.SetCollector(metrics.Collector())
	var err error
	switch {
	case *snapshot != "":
		err = runSnapshot(*snapshot, *scale, *dir, *predictors, *sweepPreds, *sweepSize, *rounds)
	case *check != "":
		err = runCheck(*check, *scale, *dir, *predictors, *sweepPreds, *sweepSize, *rounds, *factor)
	default:
		err = run(*table, *scale, *dir, *maxInstr)
	}
	if merr := metrics.Close(); merr != nil {
		fmt.Fprintln(os.Stderr, "mbpbench:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbpbench:", err)
		os.Exit(1)
	}
}

// measureSnapshot materialises the snapshot traces at the requested scale
// and measures every stage: scalar-vs-batched decode and full runs over one
// .sbbt.mlz trace, then the parallel-sweep scaling curve over a matrix of
// gzip-compressed traces (where per-pair decompression dominates, which is
// exactly the cost the shared decoded-trace cache removes).
func measureSnapshot(scale uint64, dir, predictors, sweepPreds string, sweepSize, rounds int) (*bench.SimSnapshot, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mbpbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{SBBT: true})
	if err != nil {
		return nil, err
	}
	if len(ts.SBBT) == 0 {
		return nil, fmt.Errorf("suite produced no SBBT traces")
	}
	snap, err := bench.MeasureSim(ts.SBBT[0], strings.Split(predictors, ","), rounds)
	if err != nil {
		return nil, err
	}
	sweepTraces, err := bench.PrepareSweepTraces(dir, sweepSize, scale)
	if err != nil {
		return nil, err
	}
	sweep, err := bench.MeasureSweep(sweepTraces, strings.Split(sweepPreds, ","), bench.DefaultSweepWorkers(), rounds)
	if err != nil {
		return nil, err
	}
	// Journal-write overhead at mbpsweep's default -checkpoint-every interval.
	// The fsync cost is per cell, so this stage needs cells of realistic size
	// to say anything about the amortized contract: a dedicated trace at 4x
	// the snapshot scale and the full-run predictor set (including TAGE)
	// rather than the deliberately tiny sweep matrix.
	jnlDir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jnlDir, 0o755); err != nil {
		return nil, err
	}
	jnlTraces, err := bench.PrepareSweepTraces(jnlDir, 1, 4*scale)
	if err != nil {
		return nil, err
	}
	jnl, err := bench.MeasureJournal(jnlTraces, strings.Split(predictors, ","), cliflags.DefaultCheckpointEvery, rounds)
	if err != nil {
		return nil, err
	}
	snap.Journal = jnl
	// Parallel chunk-decode scaling of the seekable container over one
	// high-entropy trace: the same decode-j widths mbprun exposes.
	chunkTrace, err := bench.PrepareChunkTrace(dir, scale)
	if err != nil {
		return nil, err
	}
	cd, err := bench.MeasureChunkDecode(chunkTrace, bench.DefaultSweepWorkers(), rounds)
	if err != nil {
		return nil, err
	}
	cd.Trace = filepath.Base(cd.Trace)
	snap.ChunkDecode = cd
	// The traces live in a throwaway directory; record just their base names.
	snap.Trace = filepath.Base(snap.Trace)
	for i, path := range sweep.Traces {
		sweep.Traces[i] = filepath.Base(path)
	}
	snap.Sweep = sweep
	return snap, nil
}

// runSnapshot measures every stage and writes the committed JSON snapshot.
func runSnapshot(out string, scale uint64, dir, predictors, sweepPreds string, sweepSize, rounds int) error {
	snap, err := measureSnapshot(scale, dir, predictors, sweepPreds, sweepSize, rounds)
	if err != nil {
		return err
	}
	if err := bench.WriteSimSnapshot(out, snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s: decode %.2fx", out, snap.Read.Speedup)
	for _, e := range snap.Sim {
		fmt.Printf(", %s %.2fx", e.Predictor, e.Speedup)
		if e.Kernel != nil {
			fmt.Printf(" (kernel %.2fx)", e.Kernel.Speedup)
		}
	}
	for _, m := range snap.Sweep.Parallel {
		fmt.Printf(", sweep@%d %.2fx", m.Workers, m.Speedup)
	}
	fmt.Printf(", journal %+.1f%%", 100*snap.Journal.OverheadFraction)
	for _, m := range snap.ChunkDecode.Parallel {
		fmt.Printf(", chunk-decode@%d %.2fx", m.Workers, m.Speedup)
	}
	fmt.Println()
	return nil
}

// runCheck is the soft regression gate: re-measure the snapshot stages
// (usually at reduced scale) and fail only when throughput regressed by
// more than factor against the committed snapshot.
func runCheck(committedPath string, scale uint64, dir, predictors, sweepPreds string, sweepSize, rounds int, factor float64) error {
	committed, err := bench.ReadSimSnapshot(committedPath)
	if err != nil {
		return err
	}
	fresh, err := measureSnapshot(scale, dir, predictors, sweepPreds, sweepSize, rounds)
	if err != nil {
		return err
	}
	violations := bench.CompareSnapshots(committed, fresh, factor)
	if err := bench.CheckError(violations); err != nil {
		return err
	}
	fmt.Printf("bench-check OK against %s (allowed factor %.1fx)\n", committedPath, factor)
	return nil
}

func run(table string, scale uint64, dir string, maxInstr uint64) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mbpbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if table == "1" || table == "all" {
		fmt.Println("## Table I: size reduction of the translated trace sets")
		fmt.Println()
		rows, err := bench.TableI(dir, scale)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTableI(rows))
	}
	if table == "3" || table == "all" {
		fmt.Println("## Table III (top): MBPlib vs the CBP5 framework")
		fmt.Println()
		ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{SBBT: true, BT9Gz: true})
		if err != nil {
			return err
		}
		rows, err := bench.TableIIITop(ts)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTimingRows(rows, "CBP5", "MBPlib"))

		fmt.Println("## Table III (bottom): MBPlib vs the ChampSim-style cycle-level model")
		fmt.Println()
		dp, err := bench.PrepareSuite(dir, "dpc3", scale, bench.Formats{SBBT: true, CSTGz: true})
		if err != nil {
			return err
		}
		rows, err = bench.TableIIIBottom(dp, maxInstr)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTimingRows(rows, "ChampSim", "MBPlib"))
	}
	if table == "4" || table == "all" {
		fmt.Println("## Table IV: speedup of the CBP5 framework from the compression method alone")
		fmt.Println()
		ts, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{BT9Gz: true, BT9MLZ: true})
		if err != nil {
			return err
		}
		rows, err := bench.TableIV(ts)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTableIV(rows))
	}
	return nil
}
