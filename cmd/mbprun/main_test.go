package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"mbplib/internal/bench"
)

// normalizeRun parses mbprun -json output and zeroes the one nondeterministic
// field (wall-clock seconds) so sequential and parallel runs compare equal.
func normalizeRun(t *testing.T, out []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if summary, ok := doc["summary"].(map[string]any); ok {
		summary["total_simulation_seconds"] = 0.0
	}
	norm, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

// TestRunParallelEquivalence: mbprun -j 4 produces the same summary and
// failures JSON, and the same exit code, as the -j 1 legacy path.
func TestRunParallelEquivalence(t *testing.T) {
	dir := t.TempDir()
	if _, err := bench.PrepareSuite(dir, "cbp5-train", 2000, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	glob := filepath.Join(dir, "*.sbbt.mlz")
	for _, predictor := range []string{"bimodal", "gshare:t=14,h=8"} {
		args := []string{"-traces", glob, "-predictor", predictor, "-policy", "skip", "-json"}
		var seqOut, seqErr bytes.Buffer
		seqCode := run(append(args, "-j", "1"), &seqOut, &seqErr)
		var parOut, parErr bytes.Buffer
		parCode := run(append(args, "-j", "4"), &parOut, &parErr)
		if seqCode != 0 || parCode != 0 {
			t.Fatalf("%s: exit codes seq=%d par=%d (stderr: %s%s)", predictor, seqCode, parCode, seqErr.String(), parErr.String())
		}
		if s, p := normalizeRun(t, seqOut.Bytes()), normalizeRun(t, parOut.Bytes()); !bytes.Equal(s, p) {
			t.Errorf("%s: JSON differs between -j 1 and -j 4\nseq: %s\npar: %s", predictor, s, p)
		}
	}
}

// TestRunUsageErrors: flag mistakes exit 1.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-traces", "does-not-exist-*", "-policy", "bogus"},
		{"-traces", "does-not-exist-*"}, // no matching traces
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}
