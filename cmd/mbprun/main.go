// Command mbprun scores one predictor configuration over a whole trace set
// in parallel — the championship evaluation workflow (§II of the MBPlib
// paper: hundreds of traces per design). Each worker owns a fresh predictor
// and its own trace reader, so throughput scales with cores.
//
// Usage:
//
//	mbprun -traces 'traces/*.sbbt.mlz' -predictor tage -workers 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

func main() {
	var (
		globs    = flag.String("traces", "", "glob of SBBT trace files")
		predSpec = flag.String("predictor", "gshare", "predictor spec (see mbpsim -list)")
		warmup   = flag.Uint64("warmup", 0, "warm-up instructions per trace")
		simInstr = flag.Uint64("sim", 0, "instructions to simulate per trace after warm-up (0 = all)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent traces")
		jsonOut  = flag.Bool("json", false, "print the summary as JSON")
	)
	flag.Parse()
	if *globs == "" {
		fmt.Fprintln(os.Stderr, "mbprun: -traces is required (see -help)")
		os.Exit(2)
	}
	if err := run(*globs, *predSpec, *warmup, *simInstr, *workers, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "mbprun:", err)
		os.Exit(1)
	}
}

func run(globs, predSpec string, warmup, simInstr uint64, workers int, jsonOut bool) error {
	// Validate the spec once before fanning out.
	if _, err := registry.New(predSpec); err != nil {
		return err
	}
	paths, err := filepath.Glob(globs)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no traces match %q", globs)
	}
	sort.Strings(paths)

	sources := make([]sim.TraceSource, len(paths))
	for i, path := range paths {
		sources[i] = sim.TraceSource{Name: path, Open: func() (bp.Reader, io.Closer, error) {
			f, err := compress.OpenFile(path)
			if err != nil {
				return nil, nil, err
			}
			r, err := sbbt.NewReader(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return r, f, nil
		}}
	}
	newPredictor := func() bp.Predictor {
		p, err := registry.New(predSpec)
		if err != nil {
			panic(err) // validated above; specs are immutable strings
		}
		return p
	}
	cfg := sim.Config{WarmupInstructions: warmup, SimInstructions: simInstr}
	results, err := sim.RunSet(sources, newPredictor, cfg, workers)
	if err != nil {
		return err
	}
	summary := sim.Summarize(results)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Predictor string         `json:"predictor"`
			Summary   sim.SetSummary `json:"summary"`
		}{predSpec, summary})
	}
	fmt.Printf("%-40s %10s %12s\n", "trace", "MPKI", "accuracy")
	for _, r := range results {
		fmt.Printf("%-40s %10.4f %12.4f\n", filepath.Base(r.Metadata.Trace), r.Metrics.MPKI, r.Metrics.Accuracy)
	}
	fmt.Printf("\n%d traces, %d instructions, %d mispredictions\n",
		summary.Traces, summary.TotalInstructions, summary.TotalMispredictions)
	fmt.Printf("mean MPKI %.4f | aggregate MPKI %.4f | aggregate accuracy %.4f\n",
		summary.MeanMPKI, summary.AggregateMPKI, summary.AggregateAccuracy)
	fmt.Printf("worst trace: %s (%.4f MPKI)\n", filepath.Base(summary.WorstTrace), summary.WorstMPKI)
	return nil
}
