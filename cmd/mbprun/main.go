// Command mbprun scores one predictor configuration over a whole trace set
// in parallel — the championship evaluation workflow (§II of the MBPlib
// paper: hundreds of traces per design). Each worker owns a fresh predictor
// and its own trace reader, so throughput scales with cores.
//
// Usage:
//
//	mbprun -traces 'traces/*.sbbt.mlz' -predictor tage -workers 8
//
// Failure policy: by default a bad trace aborts the whole run (-policy
// failfast). With -policy skip the run degrades gracefully: healthy traces
// are scored, and failed traces are reported in a failure table (and a
// "failures" JSON section with -json), each classified by the faults
// taxonomy (corrupt / truncated / limit / panic / other). Transient open
// errors can be retried with -retries and -retry-backoff.
//
// With -resume DIR the run is crash-safe: finished traces are appended to a
// durable journal in DIR and replay on a re-run instead of simulating, with
// -checkpoint-every snapshotting in-flight traces of checkpointable
// predictors. SIGINT/SIGTERM drain gracefully — unfinished traces are
// reported as resumable and the command exits 4; a second signal aborts.
// -cell-timeout bounds each trace's wall time.
//
// Exit codes: 0 success, 1 usage error, 2 partial failure (some traces
// scored, some failed), 3 total failure, 4 drained (interrupted; re-run
// with -resume to finish the rest).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/chunked"
	"mbplib/internal/cliflags"
	"mbplib/internal/compress"
	"mbplib/internal/faults"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/prof"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/sim/journal"
)

// Exit codes.
const (
	exitOK      = 0
	exitUsage   = 1
	exitPartial = 2
	exitTotal   = 3
	exitDrained = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbprun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		globs      = fs.String("traces", "", "glob of SBBT trace files")
		predSpec   = fs.String("predictor", "gshare", "predictor spec (see mbpsim -list)")
		warmup     = fs.Uint64("warmup", 0, "warm-up instructions per trace")
		simInstr   = fs.Uint64("sim", 0, "instructions to simulate per trace after warm-up (0 = all)")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent traces on the legacy path (-j 1)")
		jobs       = fs.Int("j", runtime.GOMAXPROCS(0), "parallel scheduler workers (1 = exact legacy path)")
		decodeJ    = fs.Int("decode-j", 1, "chunk-decode workers per trace for seekable (MLZS) containers")
		cacheBytes = fs.Int64("cache-bytes", sim.DefaultCacheBytes, "decoded-trace cache budget for -j > 1 (0 disables)")
		jsonOut    = fs.Bool("json", false, "print the summary as JSON")
		metricsTo  = fs.String("metrics", "", "write a pipeline metrics JSON snapshot to this file ('-' = stderr)")
		progress   = fs.Bool("progress", false, "render a live progress line on stderr")
		policyName = fs.String("policy", "failfast", "per-trace failure policy: failfast or skip")
		retries    = fs.Int("retries", 0, "retry transient trace-open failures this many times")
		backoff    = fs.Duration("retry-backoff", 100*time.Millisecond, "delay before the first retry (doubles per attempt)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		resume     = fs.String("resume", "", "journal directory for crash-safe, resumable runs")
		ckptEvery  = fs.Uint64("checkpoint-every", cliflags.DefaultCheckpointEvery, "events between in-flight trace checkpoints (with -resume; 0 disables)")
		cellTime   = fs.Duration("cell-timeout", 0, "wall-time budget per trace (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *globs == "" {
		fmt.Fprintln(stderr, "mbprun: -traces is required (see -help)")
		return exitUsage
	}
	// The whole validation table runs before any side effect (profiles,
	// journal directories), so a usage error never leaves files behind.
	// mbprun used to reject bad -retries inside its policy parser, after
	// profiles had started; the shared table closed that drift.
	if err := cliflags.Validate(
		cliflags.Workers(*jobs),
		cliflags.DecodeWorkers(*decodeJ),
		cliflags.CacheBytes(*cacheBytes),
		cliflags.CellTimeout(*cellTime),
		cliflags.ResumeOptions(*resume, cliflags.FlagWasSet(fs, "checkpoint-every")),
		cliflags.PolicyName(*policyName),
		cliflags.Retries(*retries),
	); err != nil {
		fmt.Fprintln(stderr, "mbprun:", err)
		return exitUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(stderr, "mbprun:", err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "mbprun:", err)
		}
	}()
	policy := parsePolicy(*policyName, *retries, *backoff)

	// Validate the spec once before fanning out.
	if _, err := registry.New(*predSpec); err != nil {
		fmt.Fprintln(stderr, "mbprun:", err)
		return exitUsage
	}
	paths, err := filepath.Glob(*globs)
	if err != nil {
		fmt.Fprintln(stderr, "mbprun:", err)
		return exitUsage
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "mbprun: no traces match %q\n", *globs)
		return exitUsage
	}
	sort.Strings(paths)

	sources := make([]sim.TraceSource, len(paths))
	for i, path := range paths {
		sources[i] = sim.TraceSource{Name: path, Open: func() (bp.Reader, io.Closer, error) {
			f, err := compress.OpenFileParallel(path, *decodeJ)
			if err != nil {
				return nil, nil, err
			}
			r, err := sbbt.NewReader(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return r, f, nil
		}}
		if compress.FormatForPath(path) == compress.FormatMLZS {
			sources[i].OpenChunked = func() (sim.ChunkedTrace, error) { return chunked.Open(path) }
		}
	}
	var jnl *journal.Journal
	if *resume != "" {
		if jnl, err = journal.Open(*resume); err != nil {
			fmt.Fprintln(stderr, "mbprun: opening resume journal:", err)
			return exitUsage
		}
		// Cells are keyed by trace content digest, so renamed trace files
		// still replay; unreadable files fall back to their path.
		for i, path := range paths {
			if d, derr := journal.DigestFile(path); derr == nil {
				sources[i].Digest = d
			}
		}
	}
	newPredictor := func() bp.Predictor {
		p, err := registry.New(*predSpec)
		if err != nil {
			panic(err) // validated above; specs are immutable strings
		}
		return p
	}
	metrics := cliflags.NewMetrics(*metricsTo, *progress, stderr)
	closeMetrics := func() {
		if err := metrics.Close(); err != nil {
			fmt.Fprintln(stderr, "mbprun:", err)
		}
	}
	cfg := sim.Config{WarmupInstructions: *warmup, SimInstructions: *simInstr, Metrics: metrics.Collector()}
	drain, stopSignals := cliflags.DrainOnSignal("mbprun", stderr)
	defer stopSignals()
	var set *sim.SetResult
	if *jobs == 1 && jnl == nil && *cellTime == 0 {
		// Exact legacy path; the drain wrapper fails unstarted and
		// in-flight traces as resumable once a signal lands.
		set, err = sim.RunSetPolicy(sim.DrainSources(sources, drain), newPredictor, cfg, *workers, policy)
	} else {
		set, err = sim.RunSetParallel(sources, newPredictor, cfg, sim.ParallelOptions{
			Workers: *jobs, CacheBytes: cliflags.CacheBudget(*cacheBytes), Policy: policy,
			Metrics: metrics.Collector(),
			Journal: jnl, CheckpointEvery: *ckptEvery, Drain: drain, CellTimeout: *cellTime,
		})
	}
	if err != nil {
		closeMetrics()
		fmt.Fprintln(stderr, "mbprun:", err)
		if errors.Is(err, faults.ErrDrained) {
			return exitDrained
		}
		return exitTotal
	}
	closeMetrics()
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(stderr, "mbprun: closing resume journal:", err)
		}
	}

	scored := 0
	for _, r := range set.Results {
		if r != nil {
			scored++
		}
	}
	summary := sim.Summarize(set.Results)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Predictor string             `json:"predictor"`
			Summary   sim.SetSummary     `json:"summary"`
			Failures  []sim.TraceFailure `json:"failures,omitempty"`
		}{*predSpec, summary, set.Failures}); err != nil {
			fmt.Fprintln(stderr, "mbprun:", err)
			return exitTotal
		}
	} else {
		fmt.Fprintf(stdout, "%-40s %10s %12s\n", "trace", "MPKI", "accuracy")
		for _, r := range set.Results {
			if r == nil {
				continue
			}
			fmt.Fprintf(stdout, "%-40s %10.4f %12.4f\n", filepath.Base(r.Metadata.Trace), r.Metrics.MPKI, r.Metrics.Accuracy)
		}
		fmt.Fprintf(stdout, "\n%d traces, %d instructions, %d mispredictions\n",
			summary.Traces, summary.TotalInstructions, summary.TotalMispredictions)
		fmt.Fprintf(stdout, "mean MPKI %.4f | aggregate MPKI %.4f | aggregate accuracy %.4f\n",
			summary.MeanMPKI, summary.AggregateMPKI, summary.AggregateAccuracy)
		fmt.Fprintf(stdout, "worst trace: %s (%.4f MPKI)\n", filepath.Base(summary.WorstTrace), summary.WorstMPKI)
		printFailures(stdout, set.Failures)
	}

	anyResumable := false
	for _, f := range set.Failures {
		if f.Resumable {
			anyResumable = true
		}
	}
	switch {
	case len(set.Failures) == 0:
		return exitOK
	case anyResumable:
		// Drained work is not a verdict: re-running with -resume finishes
		// the rest, so the drained code wins over partial/total.
		return exitDrained
	case scored > 0:
		return exitPartial
	default:
		return exitTotal
	}
}

// parsePolicy builds the sim failure policy from already-validated flags
// (cliflags.PolicyName and cliflags.Retries ran in the validation table).
func parsePolicy(name string, retries int, backoff time.Duration) sim.Policy {
	p := sim.Policy{Mode: sim.FailFast, Retries: retries, Backoff: backoff}
	if name == "skip" {
		p.Mode = sim.SkipFailed
	}
	return p
}

// printFailures renders the per-trace failure table of a degraded run.
func printFailures(w io.Writer, failures []sim.TraceFailure) {
	if len(failures) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%d failed trace(s):\n", len(failures))
	fmt.Fprintf(w, "%-40s %-10s %-8s %-9s %-9s %s\n", "trace", "class", "attempts", "time", "resumable", "error")
	for _, f := range failures {
		resumable := "no"
		if f.Resumable {
			resumable = "yes"
		}
		fmt.Fprintf(w, "%-40s %-10s %-8d %-9s %-9s %s\n",
			filepath.Base(f.Trace), f.Class, f.Attempts, fmt.Sprintf("%.2fs", f.Seconds), resumable, f.Message)
	}
}
