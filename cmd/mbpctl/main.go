// Command mbpctl is the remote client of the mbpd sweep daemon: it submits
// sweep specs over the JSON HTTP API, waits on them, and renders their
// results with the very bytes a local mbpsweep run would print — `mbpctl
// submit` + `mbpctl wait -json` and `mbpsweep -json` on the same spec are
// byte-identical, which is what the daemon-smoke CI gate diffs.
//
//	mbpctl -addr 127.0.0.1:7323 submit -traces 'traces/*.sbbt' -predictor 'gshare:t=14,h=%d' -from 4 -to 8
//	mbpctl -addr 127.0.0.1:7323 wait -json 1b2e99a00df1
//
// Commands:
//
//	submit   submit a sweep; prints the job ID (already-finished work is a
//	         cache hit and prints the same ID without re-simulating)
//	status   print a job's state (with -json, the raw API body)
//	wait     block until the job finishes, print its result, and exit with
//	         the job's own exit code (mbpsweep's codes: 0/2/3/4)
//	logs     stream the job's server-sent events (state transitions and
//	         progress snapshots) to stdout until the job finishes
//	cancel   ask the daemon to drain the job (exit code 4, resumable)
//	health   print the daemon's health document
//
// The daemon address comes from -addr or the MBPD_ADDR environment
// variable; mbpd publishes its bound address in <data-dir>/mbpd.addr.
// HTTP-level failures map onto the sweep exit-code taxonomy via
// internal/api: 4xx → 1 (usage), 5xx → 3 (total).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mbplib/internal/api"
	"mbplib/internal/cliflags"
	"mbplib/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: mbpctl [-addr host:port] <submit|status|wait|logs|cancel|health> [args]")
	return sweep.ExitUsage
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbpctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", os.Getenv("MBPD_ADDR"), "mbpd address (host:port or URL; default $MBPD_ADDR)")
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	if fs.NArg() == 0 {
		return usage(stderr)
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "mbpctl: -addr is required (or set MBPD_ADDR)")
		return sweep.ExitUsage
	}
	c := &client{base: normalizeAddr(*addr), stdout: stdout, stderr: stderr}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "submit":
		return c.submit(rest)
	case "status":
		return c.status(rest)
	case "wait":
		return c.wait(rest)
	case "logs":
		return c.logs(rest)
	case "cancel":
		return c.cancel(rest)
	case "health":
		return c.health(rest)
	}
	fmt.Fprintf(stderr, "mbpctl: unknown command %q\n", cmd)
	return usage(stderr)
}

// normalizeAddr turns a bare host:port into an http:// base URL.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

type client struct {
	base   string
	stdout io.Writer
	stderr io.Writer
}

func (c *client) url(path string) string { return c.base + api.PathPrefix + path }

// fail prints the error envelope of a non-2xx response (falling back to the
// raw body) and returns the mapped exit code.
func (c *client) fail(resp *http.Response, body []byte) int {
	var env api.Error
	if err := json.Unmarshal(body, &env); err == nil && env.Err.Message != "" {
		fmt.Fprintf(c.stderr, "mbpctl: %s\n", env.Err.Message)
	} else {
		fmt.Fprintf(c.stderr, "mbpctl: %s: %s\n", resp.Status, bytes.TrimSpace(body))
	}
	return api.ExitForStatus(resp.StatusCode)
}

func (c *client) netErr(err error) int {
	fmt.Fprintf(c.stderr, "mbpctl: %v\n", err)
	return sweep.ExitTotal
}

// do runs one request and returns the full body.
func (c *client) do(method, url string, body io.Reader) (*http.Response, []byte, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func (c *client) submit(args []string) int {
	fs := flag.NewFlagSet("mbpctl submit", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	var (
		globs    = fs.String("traces", "", "glob of SBBT trace files (on the daemon's host)")
		predSpec = fs.String("predictor", "gshare:t=18,h=%d", "predictor spec with a %d placeholder")
		from     = fs.Int("from", 6, "first swept value")
		to       = fs.Int("to", 30, "last swept value")
		step     = fs.Int("step", 1, "sweep step")
		policy   = fs.String("policy", "failfast", "per-trace failure policy: failfast or skip")
		retries  = fs.Int("retries", 0, "retry transient trace-open failures this many times")
		jsonOut  = fs.Bool("json", false, "print the raw submit response")
	)
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	if *globs == "" {
		fmt.Fprintln(c.stderr, "mbpctl: -traces is required (see -help)")
		return sweep.ExitUsage
	}
	// The same validation table as the local CLIs, so obvious spec errors
	// never leave the client machine.
	if err := cliflags.Validate(
		cliflags.PolicyName(*policy),
		cliflags.Retries(*retries),
	); err != nil {
		fmt.Fprintln(c.stderr, "mbpctl:", err)
		return sweep.ExitUsage
	}
	reqBody, err := json.Marshal(api.SubmitRequest{
		APIVersion: api.Version,
		Spec: api.SweepSpec{
			Traces: *globs, Predictor: *predSpec,
			From: *from, To: *to, Step: *step,
			Policy: *policy, Retries: *retries,
		},
	})
	if err != nil {
		return c.netErr(err)
	}
	resp, body, err := c.do(http.MethodPost, c.url("/jobs"), bytes.NewReader(reqBody))
	if err != nil {
		return c.netErr(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return c.fail(resp, body)
	}
	var sub api.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		return c.netErr(fmt.Errorf("decoding submit response: %w", err))
	}
	if *jsonOut {
		c.stdout.Write(body)
	} else {
		// The ID alone on stdout, so scripts can capture it; detail on stderr.
		fmt.Fprintln(c.stdout, sub.ID)
	}
	note := sub.State
	if sub.Cached {
		note += ", cached"
	}
	fmt.Fprintf(c.stderr, "mbpctl: job %s (%s)\n", sub.ID, note)
	return sweep.ExitOK
}

// getJob fetches one job; exit < 0 means "keep going" (the job document is
// valid), >= 0 is the code to return after a failure.
func (c *client) getJob(id string) (api.Job, []byte, int) {
	resp, body, err := c.do(http.MethodGet, c.url("/jobs/"+id), nil)
	if err != nil {
		return api.Job{}, nil, c.netErr(err)
	}
	if resp.StatusCode != http.StatusOK {
		return api.Job{}, nil, c.fail(resp, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return api.Job{}, nil, c.netErr(fmt.Errorf("decoding job: %w", err))
	}
	return job, body, -1
}

func (c *client) status(args []string) int {
	fs := flag.NewFlagSet("mbpctl status", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	jsonOut := fs.Bool("json", false, "print the raw API body")
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "usage: mbpctl status [-json] JOB")
		return sweep.ExitUsage
	}
	job, body, exit := c.getJob(fs.Arg(0))
	if exit >= 0 {
		return exit
	}
	if *jsonOut {
		c.stdout.Write(body)
		return sweep.ExitOK
	}
	line := fmt.Sprintf("job %s: %s", job.ID, job.State)
	if api.TerminalState(job.State) {
		line += fmt.Sprintf(" (exit %d)", job.ExitCode)
	}
	if job.FailureClass != "" {
		line += " class=" + job.FailureClass
	}
	if job.Error != "" {
		line += ": " + job.Error
	}
	fmt.Fprintln(c.stdout, line)
	return sweep.ExitOK
}

func (c *client) wait(args []string) int {
	fs := flag.NewFlagSet("mbpctl wait", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	jsonOut := fs.Bool("json", false, "print the result as JSON (byte-identical to mbpsweep -json)")
	poll := fs.Duration("poll", 100*time.Millisecond, "status poll interval")
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "usage: mbpctl wait [-json] JOB")
		return sweep.ExitUsage
	}
	id := fs.Arg(0)
	for {
		job, _, exit := c.getJob(id)
		if exit >= 0 {
			return exit
		}
		if api.TerminalState(job.State) {
			return c.renderResult(job, *jsonOut)
		}
		time.Sleep(*poll)
	}
}

// renderResult prints a finished job the way mbpsweep would have, fetching
// the verbatim result bytes from the result endpoint (the Job envelope
// re-indents the embedded JSON; the endpoint does not), then returns the
// job's own exit code.
func (c *client) renderResult(job api.Job, jsonOut bool) int {
	if job.Result != nil {
		format := "json"
		if !jsonOut {
			format = "text"
		}
		resp, body, err := c.do(http.MethodGet, c.url("/jobs/"+job.ID+"/result?format="+format), nil)
		if err != nil {
			return c.netErr(err)
		}
		if resp.StatusCode != http.StatusOK {
			return c.fail(resp, body)
		}
		c.stdout.Write(body)
		if job.State == api.StateCancelled {
			fmt.Fprintf(c.stderr, "mbpctl: job %s was cancelled; resubmit to resume\n", job.ID)
		}
		return job.Result.ExitCode
	}
	// No rendered result: the sweep failed (or was cancelled) before
	// producing one.
	msg := job.Error
	if msg == "" {
		msg = job.State
	}
	if job.FailureClass != "" {
		fmt.Fprintf(c.stderr, "mbpctl: job %s %s (%s): %s\n", job.ID, job.State, job.FailureClass, msg)
	} else {
		fmt.Fprintf(c.stderr, "mbpctl: job %s %s: %s\n", job.ID, job.State, msg)
	}
	if job.ExitCode != 0 {
		return job.ExitCode
	}
	return sweep.ExitTotal
}

func (c *client) logs(args []string) int {
	fs := flag.NewFlagSet("mbpctl logs", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "usage: mbpctl logs JOB")
		return sweep.ExitUsage
	}
	resp, err := http.Get(c.url("/jobs/" + fs.Arg(0) + "/events"))
	if err != nil {
		return c.netErr(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return c.fail(resp, body)
	}
	// Relay the SSE stream as-is; it ends when the job reaches a terminal
	// state.
	if _, err := io.Copy(c.stdout, resp.Body); err != nil {
		return c.netErr(err)
	}
	return sweep.ExitOK
}

func (c *client) cancel(args []string) int {
	fs := flag.NewFlagSet("mbpctl cancel", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "usage: mbpctl cancel JOB")
		return sweep.ExitUsage
	}
	resp, body, err := c.do(http.MethodDelete, c.url("/jobs/"+fs.Arg(0)), nil)
	if err != nil {
		return c.netErr(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return c.fail(resp, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return c.netErr(fmt.Errorf("decoding job: %w", err))
	}
	fmt.Fprintf(c.stdout, "job %s: cancel requested (%s)\n", job.ID, job.State)
	return sweep.ExitOK
}

func (c *client) health(args []string) int {
	fs := flag.NewFlagSet("mbpctl health", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	jsonOut := fs.Bool("json", false, "print the raw API body")
	if err := fs.Parse(args); err != nil {
		return sweep.ExitUsage
	}
	resp, body, err := c.do(http.MethodGet, c.url("/healthz"), nil)
	if err != nil {
		return c.netErr(err)
	}
	if resp.StatusCode != http.StatusOK {
		return c.fail(resp, body)
	}
	if *jsonOut {
		c.stdout.Write(body)
		return sweep.ExitOK
	}
	var h api.Health
	if err := json.Unmarshal(body, &h); err != nil {
		return c.netErr(fmt.Errorf("decoding health: %w", err))
	}
	fmt.Fprintf(c.stdout, "%s: %d queued, %d running, %d done, %d failed, %d cancelled\n",
		h.Status, h.Queued, h.Running, h.Done, h.Failed, h.Cancelled)
	return sweep.ExitOK
}
