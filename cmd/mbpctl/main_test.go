package main

import (
	"bytes"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbplib/internal/bench"
	"mbplib/internal/daemon"
	"mbplib/internal/sweep"
)

// startDaemon runs an in-process daemon behind an httptest server, which is
// exactly what mbpd serves over TCP.
func startDaemon(t *testing.T, dataDir string) *httptest.Server {
	t.Helper()
	d, err := daemon.New(daemon.Config{DataDir: dataDir, Jobs: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := d.Close(); err != nil {
			t.Errorf("closing daemon: %v", err)
		}
	})
	return srv
}

func mbpctl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRemoteMatchesLocal is the acceptance test of the daemon path: submit +
// wait through the HTTP API must print byte-identical output (JSON and text)
// to the same spec run through the local mbpsweep pipeline.
func TestRemoteMatchesLocal(t *testing.T) {
	traceDir := t.TempDir()
	if _, err := bench.PrepareSuite(traceDir, "cbp5-train", 2000, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	glob := filepath.Join(traceDir, "*.sbbt*")
	srv := startDaemon(t, t.TempDir())
	specArgs := []string{
		"-traces", glob, "-predictor", "gshare:t=12,h=%d",
		"-from", "4", "-to", "6", "-policy", "skip",
	}

	code, out, errb := mbpctl(t, append([]string{"-addr", srv.URL, "submit"}, specArgs...)...)
	if code != 0 {
		t.Fatalf("submit exited %d: %s", code, errb)
	}
	id := strings.TrimSpace(out)
	if len(id) != daemon.IDLength {
		t.Fatalf("submit printed %q, want a %d-char job ID", out, daemon.IDLength)
	}

	// The local run: the exact pipeline behind mbpsweep (whose own tests pin
	// that equivalence).
	spec := sweep.Spec{
		Traces: glob, Predictor: "gshare:t=12,h=%d",
		From: 4, To: 6, Policy: "skip",
	}
	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sets, err := resolved.Run(sweep.RunOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var localJSON, localText bytes.Buffer
	localCode := sweep.Render(&localJSON, io.Discard, resolved.Specs, sets, len(resolved.Sources), true)
	sweep.Render(&localText, io.Discard, resolved.Specs, sets, len(resolved.Sources), false)

	code, out, errb = mbpctl(t, "-addr", srv.URL, "wait", "-json", id)
	if code != localCode {
		t.Fatalf("wait -json exited %d, want %d: %s", code, localCode, errb)
	}
	if out != localJSON.String() {
		t.Errorf("remote JSON differs from local run:\nlocal:  %s\nremote: %s", localJSON.String(), out)
	}

	code, out, _ = mbpctl(t, "-addr", srv.URL, "wait", id)
	if code != localCode {
		t.Fatalf("wait exited %d, want %d", code, localCode)
	}
	if out != localText.String() {
		t.Errorf("remote text differs from local run:\nlocal:  %s\nremote: %s", localText.String(), out)
	}

	// Resubmitting the identical spec is a cache hit on the same job.
	code, out, errb = mbpctl(t, append([]string{"-addr", srv.URL, "submit"}, specArgs...)...)
	if code != 0 {
		t.Fatalf("resubmit exited %d: %s", code, errb)
	}
	if strings.TrimSpace(out) != id {
		t.Errorf("resubmit printed %q, want the original ID %s", out, id)
	}
	if !strings.Contains(errb, "cached") {
		t.Errorf("resubmit note %q does not mention the cache hit", errb)
	}

	// status reports the terminal state and exit code.
	code, out, _ = mbpctl(t, "-addr", srv.URL, "status", id)
	if code != 0 || !strings.Contains(out, "done") {
		t.Errorf("status = %d %q, want done", code, out)
	}

	// logs relays the SSE stream, which ends with the done frame.
	code, out, _ = mbpctl(t, "-addr", srv.URL, "logs", id)
	if code != 0 || !strings.Contains(out, "event: done") {
		t.Errorf("logs = %d, missing done frame:\n%s", code, out)
	}

	// Cancelling a finished job is a conflict: usage-class exit.
	code, _, errb = mbpctl(t, "-addr", srv.URL, "cancel", id)
	if code != sweep.ExitUsage {
		t.Errorf("cancel of done job exited %d (%s), want %d", code, errb, sweep.ExitUsage)
	}

	// health renders the counters.
	code, out, _ = mbpctl(t, "-addr", srv.URL, "health")
	if code != 0 || !strings.HasPrefix(out, "ok:") || !strings.Contains(out, "1 done") {
		t.Errorf("health = %d %q", code, out)
	}
}

// TestSubmitErrors pins spec rejection at both ends: a glob matching
// nothing is refused synchronously by the daemon with the resolver's
// message, and a bad -policy never leaves the client.
func TestSubmitErrors(t *testing.T) {
	srv := startDaemon(t, t.TempDir())
	code, _, errb := mbpctl(t, "-addr", srv.URL, "submit",
		"-traces", filepath.Join(t.TempDir(), "*.sbbt"),
		"-predictor", "gshare:t=12,h=%d", "-from", "4", "-to", "6")
	if code != sweep.ExitUsage {
		t.Fatalf("submit with no matching traces exited %d, want %d", code, sweep.ExitUsage)
	}
	if !strings.Contains(errb, "no traces match") {
		t.Errorf("stderr %q, want the resolver's message", errb)
	}

	code, _, errb = mbpctl(t, "-addr", srv.URL, "submit",
		"-traces", "x", "-predictor", "gshare:t=12,h=%d",
		"-from", "4", "-to", "6", "-policy", "bogus")
	if code != sweep.ExitUsage || !strings.Contains(errb, "unknown -policy") {
		t.Errorf("bad policy = %d %q, want client-side validation", code, errb)
	}
}

func TestUsageErrors(t *testing.T) {
	t.Setenv("MBPD_ADDR", "")
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no-command", nil, "usage:"},
		{"no-addr", []string{"status", "x"}, "-addr is required"},
		{"unknown-command", []string{"-addr", "127.0.0.1:1", "frobnicate"}, "unknown command"},
		{"wait-no-job", []string{"-addr", "127.0.0.1:1", "wait"}, "usage: mbpctl wait"},
		{"submit-no-traces", []string{"-addr", "127.0.0.1:1", "submit"}, "-traces is required"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errb := mbpctl(t, tc.args...)
			if code != sweep.ExitUsage {
				t.Errorf("exit = %d, want %d", code, sweep.ExitUsage)
			}
			if !strings.Contains(errb, tc.want) {
				t.Errorf("stderr %q, want %q", errb, tc.want)
			}
		})
	}
}

// TestNetworkErrorIsTotal pins the exit taxonomy for a dead daemon.
func TestNetworkErrorIsTotal(t *testing.T) {
	code, _, errb := mbpctl(t, "-addr", "127.0.0.1:1", "status", "abcdefabcdef")
	if code != sweep.ExitTotal {
		t.Fatalf("exit = %d (%s), want %d", code, errb, sweep.ExitTotal)
	}
}

// TestPollInterval keeps wait responsive: a done job returns on the first
// poll regardless of the interval.
func TestPollInterval(t *testing.T) {
	traceDir := t.TempDir()
	if _, err := bench.PrepareSuite(traceDir, "cbp5-train", 2000, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	glob := filepath.Join(traceDir, "*.sbbt*")
	srv := startDaemon(t, t.TempDir())
	code, out, errb := mbpctl(t, "-addr", srv.URL, "submit",
		"-traces", glob, "-predictor", "gshare:t=12,h=%d", "-from", "4", "-to", "4")
	if code != 0 {
		t.Fatalf("submit exited %d: %s", code, errb)
	}
	id := strings.TrimSpace(out)
	// Generous interval; the job is tiny, so wait still returns quickly
	// once the first poll sees the terminal state.
	start := time.Now()
	code, _, errb = mbpctl(t, "-addr", srv.URL, "wait", "-poll", "50ms", id)
	if code != 0 {
		t.Fatalf("wait exited %d: %s", code, errb)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("wait took %v", elapsed)
	}
}
