// Command mbptrace inspects, validates and converts branch traces: the
// trace tooling of §IV-D of the MBPlib paper (the BT9↔SBBT translators are
// what made the CBP5 sets usable with the new simulator).
//
// Usage:
//
//	mbptrace info    t.sbbt.mlz
//	mbptrace convert in.bt9.gz out.sbbt.mlz
//	mbptrace convert in.sbbt out.bt9.gz
//	mbptrace verify  t.sbbt.mlz
//	mbptrace recompress -chunk-size 1048576 -compress-j 4 in.sbbt.mlz out.sbbt.mlzs
//
// recompress rewrites any supported compressed stream into the seekable
// chunked (MLZS) container, preserving the inner bytes exactly. When the
// inner stream is a plain (non-checksummed) SBBT trace, chunk boundaries
// are packet-aligned so the result qualifies for chunk-granular scheduling
// and parallel decode. The size/ratio report on stdout is deterministic;
// the throughput line goes to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/bt9"
	"mbplib/internal/compress"
	"mbplib/internal/sbbt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	usage := func() {
		fmt.Fprintf(stderr, "usage: mbptrace info|verify <trace>\n"+
			"       mbptrace convert <in> <out>\n"+
			"       mbptrace recompress [-chunk-size N] [-compress-j N] [-level fast|best] <in> <out.mlzs>\n")
	}
	if len(args) < 2 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "info":
		err = info(args[1], stdout)
	case "verify":
		err = verify(args[1], stdout)
	case "convert":
		if len(args) != 3 {
			usage()
			return 2
		}
		err = convert(args[1], args[2])
	case "recompress":
		return recompress(args[1:], stdout, stderr)
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "mbptrace:", err)
		return 1
	}
	return 0
}

// openTrace opens a trace of either format, decompressing transparently.
func openTrace(path string) (bp.Reader, io.Closer, error) {
	f, err := compress.OpenFile(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	prefix, err := br.Peek(5)
	if err != nil && err != io.EOF {
		f.Close()
		return nil, nil, err
	}
	if len(prefix) >= 5 && string(prefix) == string(sbbt.Signature[:]) {
		r, err := sbbt.NewReader(br)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f, nil
	}
	r, err := bt9.NewReader(br)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func info(path string, stdout io.Writer) error {
	r, c, err := openTrace(path)
	if err != nil {
		return err
	}
	defer c.Close()
	var (
		branches, instr uint64
		cond, taken     uint64
		statics         = map[uint64]struct{}{}
	)
	for {
		ev, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		branches++
		instr += ev.InstrsSinceLastBranch + 1
		statics[ev.Branch.IP] = struct{}{}
		if ev.Branch.Opcode.IsConditional() {
			cond++
		}
		if ev.Branch.Taken {
			taken++
		}
	}
	fmt.Fprintf(stdout, "trace:                 %s\n", path)
	fmt.Fprintf(stdout, "instructions:          %d\n", instr)
	fmt.Fprintf(stdout, "branches:              %d (%.1f%% of instructions)\n", branches, 100*float64(branches)/float64(instr))
	fmt.Fprintf(stdout, "conditional branches:  %d\n", cond)
	fmt.Fprintf(stdout, "taken fraction:        %.3f\n", float64(taken)/float64(branches))
	fmt.Fprintf(stdout, "static branches:       %d\n", len(statics))
	if s, ok := r.(bp.Sizer); ok {
		fmt.Fprintf(stdout, "header instructions:   %d\n", s.TotalInstructions())
		fmt.Fprintf(stdout, "header branches:       %d\n", s.TotalBranches())
	}
	if compress.FormatForPath(path) == compress.FormatMLZS {
		st, err := compress.StatMLZSFile(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "container:             mlzs, %d chunks of %d bytes\n", st.Chunks, st.ChunkSize)
		fmt.Fprintf(stdout, "container raw bytes:   %d (%.3fx over %d on disk)\n",
			st.RawSize, float64(st.RawSize)/float64(st.CompressedSize), st.CompressedSize)
		if st.Align > 0 {
			fmt.Fprintf(stdout, "container alignment:   %d (offset %d)\n", st.Align, st.AlignOffset)
		}
		index := "intact"
		if !st.Indexed {
			index = "missing (sequential scan)"
		}
		fmt.Fprintf(stdout, "container index:       %s\n", index)
	}
	return nil
}

func verify(path string, stdout io.Writer) error {
	r, c, err := openTrace(path)
	if err != nil {
		return err
	}
	defer c.Close()
	var branches uint64
	for {
		ev, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("after %d branches: %w", branches, err)
		}
		if err := ev.Branch.Validate(); err != nil {
			return fmt.Errorf("branch %d: %w", branches, err)
		}
		branches++
	}
	if s, ok := r.(bp.Sizer); ok && s.TotalBranches() != branches {
		return fmt.Errorf("header promises %d branches, trace has %d", s.TotalBranches(), branches)
	}
	fmt.Fprintf(stdout, "ok: %d branches\n", branches)
	return nil
}

// recompress rewrites a compressed stream into the seekable MLZS container.
func recompress(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbptrace recompress", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chunkSize = fs.Int("chunk-size", compress.DefaultMLZSChunkSize, "target decompressed bytes per chunk")
		compressJ = fs.Int("compress-j", 1, "parallel compression workers (output is identical at any width)")
		level     = fs.String("level", "best", "compression effort: fast or best")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "mbptrace recompress: want exactly <in> and <out> arguments")
		return 2
	}
	lv := compress.LevelBest
	switch *level {
	case "fast":
		lv = compress.LevelFast
	case "best":
	default:
		fmt.Fprintf(stderr, "mbptrace recompress: unknown -level %q (want fast or best)\n", *level)
		return 2
	}
	if *chunkSize < 1 {
		fmt.Fprintf(stderr, "mbptrace recompress: -chunk-size must be >= 1 (got %d)\n", *chunkSize)
		return 2
	}
	if *compressJ < 1 {
		fmt.Fprintf(stderr, "mbptrace recompress: -compress-j must be >= 1 (got %d)\n", *compressJ)
		return 2
	}
	opts := compress.MLZSOptions{ChunkSize: *chunkSize, Level: lv, Workers: *compressJ}
	if err := doRecompress(fs.Arg(0), fs.Arg(1), opts, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "mbptrace:", err)
		return 1
	}
	return 0
}

// doRecompress copies the decompressed inner bytes of inPath into an MLZS
// container at outPath and reports sizes (stdout, deterministic) and
// throughput (stderr).
func doRecompress(inPath, outPath string, opts compress.MLZSOptions, stdout, stderr io.Writer) error {
	in, err := compress.OpenFile(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	br := bufio.NewReaderSize(in, 1<<16)
	// A plain SBBT inner stream gets packet-aligned chunk boundaries, the
	// eligibility contract for chunk-granular scheduling. Checksummed SBBT
	// interleaves CRC trailers with packets, so it stays unaligned.
	if hdr, err := br.Peek(sbbt.HeaderSize); err == nil {
		if h, herr := sbbt.ParseHeader(hdr); herr == nil && !h.Checksummed {
			opts.Align = sbbt.PacketSize
			opts.AlignOffset = sbbt.HeaderSize
		}
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	w := compress.NewMLZSWriter(out, opts)
	start := time.Now()
	rawBytes, err := io.Copy(w, br)
	if err == nil {
		err = w.Close()
	}
	if err != nil {
		out.Close()
		os.Remove(outPath)
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	inInfo, err := os.Stat(inPath)
	if err != nil {
		return err
	}
	st, err := compress.StatMLZSFile(outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "input:       %s (%d bytes)\n", inPath, inInfo.Size())
	fmt.Fprintf(stdout, "output:      %s (%d bytes)\n", outPath, st.CompressedSize)
	fmt.Fprintf(stdout, "raw:         %d bytes in %d chunks of %d\n", rawBytes, st.Chunks, st.ChunkSize)
	if st.Align > 0 {
		fmt.Fprintf(stdout, "alignment:   %d (offset %d)\n", st.Align, st.AlignOffset)
	}
	fmt.Fprintf(stdout, "ratio:       %.3fx raw, %.3fx vs input\n",
		float64(rawBytes)/float64(st.CompressedSize), float64(inInfo.Size())/float64(st.CompressedSize))
	secs := elapsed.Seconds()
	if secs > 0 {
		fmt.Fprintf(stderr, "recompressed %d bytes in %.2fs (%.1f MB/s raw)\n",
			rawBytes, secs, float64(rawBytes)/secs/(1<<20))
	}
	return nil
}

// convert reads any supported trace and writes it in the format implied by
// the output file name (.sbbt* or .bt9*), compressed per extension.
func convert(inPath, outPath string) error {
	r, c, err := openTrace(inPath)
	if err != nil {
		return err
	}
	defer c.Close()

	out, err := compress.CreateFile(outPath, compress.LevelBest)
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(outPath, ".gz"), ".mlzs"), ".mlz")
	switch {
	case strings.HasSuffix(base, ".sbbt"):
		err = convertToSBBT(r, out)
	case strings.HasSuffix(base, ".bt9"):
		err = convertToBT9(r, out)
	default:
		err = fmt.Errorf("cannot infer output format from %q (want .sbbt or .bt9, optionally compressed)", outPath)
	}
	if err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func convertToSBBT(r bp.Reader, out io.Writer) error {
	// SBBT needs the totals up front. BT9 headers carry them; otherwise
	// the trace would need buffering, which info-size traces never do.
	s, ok := r.(bp.Sizer)
	if !ok || s.TotalBranches() == 0 {
		return fmt.Errorf("input does not declare totals; cannot write an SBBT header")
	}
	w, err := sbbt.NewWriter(out, s.TotalInstructions(), s.TotalBranches())
	if err != nil {
		return err
	}
	if err := pump(r, w.Write); err != nil {
		return err
	}
	return w.Close()
}

func convertToBT9(r bp.Reader, out io.Writer) error {
	w := bt9.NewWriter(out)
	if err := pump(r, w.Write); err != nil {
		return err
	}
	return w.Close()
}

func pump(r bp.Reader, write func(bp.Event) error) error {
	for {
		ev, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := write(ev); err != nil {
			return err
		}
	}
}
