// Command mbptrace inspects, validates and converts branch traces: the
// trace tooling of §IV-D of the MBPlib paper (the BT9↔SBBT translators are
// what made the CBP5 sets usable with the new simulator).
//
// Usage:
//
//	mbptrace info    t.sbbt.mlz
//	mbptrace convert in.bt9.gz out.sbbt.mlz
//	mbptrace convert in.sbbt out.bt9.gz
//	mbptrace verify  t.sbbt.mlz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mbplib/internal/bp"
	"mbplib/internal/bt9"
	"mbplib/internal/compress"
	"mbplib/internal/sbbt"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mbptrace info|verify <trace>\n       mbptrace convert <in> <out>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "info":
		err = info(args[1])
	case "verify":
		err = verify(args[1])
	case "convert":
		if len(args) != 3 {
			flag.Usage()
			os.Exit(2)
		}
		err = convert(args[1], args[2])
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbptrace:", err)
		os.Exit(1)
	}
}

// openTrace opens a trace of either format, decompressing transparently.
func openTrace(path string) (bp.Reader, io.Closer, error) {
	f, err := compress.OpenFile(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	prefix, err := br.Peek(5)
	if err != nil && err != io.EOF {
		f.Close()
		return nil, nil, err
	}
	if len(prefix) >= 5 && string(prefix) == string(sbbt.Signature[:]) {
		r, err := sbbt.NewReader(br)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f, nil
	}
	r, err := bt9.NewReader(br)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func info(path string) error {
	r, c, err := openTrace(path)
	if err != nil {
		return err
	}
	defer c.Close()
	var (
		branches, instr uint64
		cond, taken     uint64
		statics         = map[uint64]struct{}{}
	)
	for {
		ev, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		branches++
		instr += ev.InstrsSinceLastBranch + 1
		statics[ev.Branch.IP] = struct{}{}
		if ev.Branch.Opcode.IsConditional() {
			cond++
		}
		if ev.Branch.Taken {
			taken++
		}
	}
	fmt.Printf("trace:                 %s\n", path)
	fmt.Printf("instructions:          %d\n", instr)
	fmt.Printf("branches:              %d (%.1f%% of instructions)\n", branches, 100*float64(branches)/float64(instr))
	fmt.Printf("conditional branches:  %d\n", cond)
	fmt.Printf("taken fraction:        %.3f\n", float64(taken)/float64(branches))
	fmt.Printf("static branches:       %d\n", len(statics))
	if s, ok := r.(bp.Sizer); ok {
		fmt.Printf("header instructions:   %d\n", s.TotalInstructions())
		fmt.Printf("header branches:       %d\n", s.TotalBranches())
	}
	return nil
}

func verify(path string) error {
	r, c, err := openTrace(path)
	if err != nil {
		return err
	}
	defer c.Close()
	var branches uint64
	for {
		ev, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("after %d branches: %w", branches, err)
		}
		if err := ev.Branch.Validate(); err != nil {
			return fmt.Errorf("branch %d: %w", branches, err)
		}
		branches++
	}
	if s, ok := r.(bp.Sizer); ok && s.TotalBranches() != branches {
		return fmt.Errorf("header promises %d branches, trace has %d", s.TotalBranches(), branches)
	}
	fmt.Printf("ok: %d branches\n", branches)
	return nil
}

// convert reads any supported trace and writes it in the format implied by
// the output file name (.sbbt* or .bt9*), compressed per extension.
func convert(inPath, outPath string) error {
	r, c, err := openTrace(inPath)
	if err != nil {
		return err
	}
	defer c.Close()

	out, err := compress.CreateFile(outPath, compress.LevelBest)
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(strings.TrimSuffix(outPath, ".gz"), ".mlz")
	switch {
	case strings.HasSuffix(base, ".sbbt"):
		err = convertToSBBT(r, out)
	case strings.HasSuffix(base, ".bt9"):
		err = convertToBT9(r, out)
	default:
		err = fmt.Errorf("cannot infer output format from %q (want .sbbt or .bt9, optionally compressed)", outPath)
	}
	if err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func convertToSBBT(r bp.Reader, out io.Writer) error {
	// SBBT needs the totals up front. BT9 headers carry them; otherwise
	// the trace would need buffering, which info-size traces never do.
	s, ok := r.(bp.Sizer)
	if !ok || s.TotalBranches() == 0 {
		return fmt.Errorf("input does not declare totals; cannot write an SBBT header")
	}
	w, err := sbbt.NewWriter(out, s.TotalInstructions(), s.TotalBranches())
	if err != nil {
		return err
	}
	if err := pump(r, w.Write); err != nil {
		return err
	}
	return w.Close()
}

func convertToBT9(r bp.Reader, out io.Writer) error {
	w := bt9.NewWriter(out)
	if err := pump(r, w.Write); err != nil {
		return err
	}
	return w.Close()
}

func pump(r bp.Reader, write func(bp.Event) error) error {
	for {
		ev, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := write(ev); err != nil {
			return err
		}
	}
}
