package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbplib/internal/bench"
)

var update = flag.Bool("update", false, "rewrite the golden output files")

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenRecompressInfo locks the deterministic stdout of the recompress
// and info subcommands over a generated trace. Trace generation and MLZS
// compression are both deterministic, so the byte sizes in the report are
// stable across runs and platforms.
func TestGoldenRecompressInfo(t *testing.T) {
	dir := t.TempDir()
	ts, err := bench.PrepareSuite(dir, "cbp5-train", 2000, bench.Formats{SBBT: true})
	if err != nil {
		t.Fatal(err)
	}
	in := ts.SBBT[0]
	out := strings.TrimSuffix(in, ".mlz") + ".mlzs"

	var stdout, stderr bytes.Buffer
	if code := run([]string{"recompress", "-chunk-size", "4096", "-compress-j", "3", in, out}, &stdout, &stderr); code != 0 {
		t.Fatalf("recompress exited %d: %s", code, stderr.String())
	}
	// Parallel compression must be byte-identical to sequential.
	seq := out + ".seq"
	if code := run([]string{"recompress", "-chunk-size", "4096", in, seq}, new(bytes.Buffer), &stderr); code != 0 {
		t.Fatalf("sequential recompress exited %d: %s", code, stderr.String())
	}
	a, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("-compress-j 3 produced different container bytes than sequential (%d vs %d bytes)", len(a), len(b))
	}

	stdout.WriteString("---\n")
	if code := run([]string{"info", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("info exited %d: %s", code, stderr.String())
	}
	stdout.WriteString("---\n")
	if code := run([]string{"verify", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("verify exited %d: %s", code, stderr.String())
	}
	got := bytes.ReplaceAll(stdout.Bytes(), []byte(dir), []byte("$DIR"))
	checkGolden(t, "recompress_info.txt", got)
}

// TestRecompressUsageErrors locks the exit codes of the flag validation.
func TestRecompressUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"recompress", "-chunk-size", "0", "in", "out"},
		{"recompress", "-compress-j", "0", "in", "out"},
		{"recompress", "-level", "turbo", "in", "out"},
		{"recompress", "only-one-arg"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}
