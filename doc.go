// Package mbplib is a Go reproduction of MBPlib, the Modular Branch
// Prediction Library (Domínguez-Sánchez and Ros, ISPASS 2023): a fast,
// microarchitecture-agnostic branch-prediction simulation library built as
// a library rather than a framework — user code calls the simulator, not
// the other way around.
//
// The root package carries only documentation and the table-reproduction
// benchmarks (bench_test.go). The implementation lives under internal/:
//
//   - internal/bp — the branch model and the Predict/Train/Track interface
//   - internal/sim — the standard and comparison simulators (§IV, §VI-C)
//   - internal/sbbt — the Simple Binary Branch Trace format (§IV-C)
//   - internal/utils — the utilities library (§V)
//   - internal/predictors — the examples library (Table II)
//   - internal/bt9, internal/cbp5 — the CBP5-framework baseline (§VII)
//   - internal/cst, internal/uarch — the ChampSim-style baseline (§VII)
//   - internal/tracegen — synthetic stand-ins for the CBP5/DPC3 trace sets
//   - internal/compress — gzip plus MLZ, the from-scratch zstd stand-in
//   - internal/opt — parameter-space search (§VI-B)
//   - internal/bench — the Table I/III/IV harness
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package mbplib
