#!/bin/sh
# daemon_smoke.sh — end-to-end smoke test of the daemon path, run by
# `make daemon-smoke` and the CI daemon-smoke job:
#
#   1. build mbpd, mbpctl, mbpgen and mbpsweep;
#   2. generate a small synthetic trace suite;
#   3. start mbpd on a random loopback port, submit a sweep with mbpctl
#      and wait for the result;
#   4. diff the daemon's result JSON against a local mbpsweep run of the
#      same spec — the byte-identity contract;
#   5. resubmit the identical spec and require a cache hit on the same job;
#   6. SIGTERM the daemon and require a clean drain (exit 0) within a
#      bounded wait, with the address file removed.
#
# Everything (binaries, traces, daemon state, logs) lands under
# $DAEMON_SMOKE_DIR (default: a fresh mktemp dir) so CI can upload the
# directory as a failure artifact.
set -eu

work="${DAEMON_SMOKE_DIR:-$(mktemp -d)}"
mkdir -p "$work"
bin="$work/bin"
log="$work/daemon-smoke.log"
: >"$log"

fail() {
	echo "daemon-smoke: FAIL: $*" >&2
	echo "daemon-smoke: logs under $work" >&2
	if [ -f "$work/mbpd.log" ]; then
		sed 's/^/  mbpd: /' "$work/mbpd.log" >&2
	fi
	exit 1
}

cleanup() {
	if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -9 "$daemon_pid" 2>/dev/null || true
	fi
}
trap cleanup EXIT

echo "daemon-smoke: building (workdir $work)"
go build -o "$bin/" ./cmd/mbpd ./cmd/mbpctl ./cmd/mbpgen ./cmd/mbpsweep

echo "daemon-smoke: generating traces"
"$bin/mbpgen" -suite cbp5-train -dir "$work/traces" -scale 2000 >>"$log" 2>&1

glob="$work/traces/*.sbbt*"
spec='gshare:t=12,h=%d'

echo "daemon-smoke: starting mbpd"
"$bin/mbpd" -data-dir "$work/data" -listen 127.0.0.1:0 >"$work/mbpd.log" 2>&1 &
daemon_pid=$!

# mbpd publishes its bound address in <data-dir>/mbpd.addr once listening.
addr=
i=0
while [ "$i" -lt 300 ]; do
	if [ -s "$work/data/mbpd.addr" ]; then
		addr="$(cat "$work/data/mbpd.addr")"
		break
	fi
	kill -0 "$daemon_pid" 2>/dev/null || fail "mbpd exited before binding"
	i=$((i + 1))
	sleep 0.1
done
[ -n "$addr" ] || fail "mbpd never published its address"
echo "daemon-smoke: mbpd on $addr"

id="$("$bin/mbpctl" -addr "$addr" submit \
	-traces "$glob" -predictor "$spec" -from 4 -to 6 -policy skip \
	2>>"$log")" || fail "submit failed (see $log)"
echo "daemon-smoke: job $id"

"$bin/mbpctl" -addr "$addr" wait -json "$id" >"$work/remote.json" 2>>"$log" \
	|| fail "wait failed"

"$bin/mbpsweep" -traces "$glob" -predictor "$spec" -from 4 -to 6 -policy skip \
	-json >"$work/local.json" 2>>"$log" || fail "local mbpsweep failed"

diff -u "$work/local.json" "$work/remote.json" >&2 \
	|| fail "daemon result differs from local mbpsweep"
echo "daemon-smoke: remote result is byte-identical to mbpsweep -json"

# Resubmitting the identical spec must land on the same job as a cache hit,
# served from the store without re-simulating.
"$bin/mbpctl" -addr "$addr" submit -json \
	-traces "$glob" -predictor "$spec" -from 4 -to 6 -policy skip \
	>"$work/resubmit.json" 2>>"$log" || fail "resubmit failed"
grep -q '"cached": true' "$work/resubmit.json" \
	|| fail "resubmit was not a cache hit: $(cat "$work/resubmit.json")"
grep -q "\"id\": \"$id\"" "$work/resubmit.json" \
	|| fail "resubmit returned a different job: $(cat "$work/resubmit.json")"
echo "daemon-smoke: resubmit is a cache hit on job $id"

# SIGTERM must drain to a clean exit 0 within the timeout and remove the
# published address file.
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -lt 300 ] || fail "mbpd did not exit within 30s of SIGTERM"
	sleep 0.1
done
code=0
wait "$daemon_pid" || code=$?
[ "$code" -eq 0 ] || fail "mbpd drain exited $code, want 0"
[ ! -e "$work/data/mbpd.addr" ] || fail "mbpd left its address file behind"
daemon_pid=

echo "daemon-smoke: PASS"
