// Classroom: the pedagogical tour of the examples library (§V, §VIII-E of
// the MBPlib paper).
//
// The paper positions MBPlib as a teaching tool: results come back within
// seconds, and the examples library spans the history of branch prediction
// from bimodal to BATAGE. This program runs that whole line-up over one
// workload and prints the accuracy ladder students should recognise — plus
// a per-workload breakdown showing *why* each generation wins: loops need
// history length, correlated branches need history at all, and noisy
// branches reward hysteresis.
//
//	go run ./examples/classroom
package main

import (
	"fmt"
	"log"
	"strings"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// lineup is the examples library in (rough) chronological order: Table II
// of the paper plus the extra designs this reproduction ships.
var lineup = []string{
	"always-taken",
	"bimodal",
	"twolevel:variant=GAs",
	"gshare",
	"tournament",
	"agree",
	"yags",
	"alpha",
	"gskew",
	"perceptron",
	"ogehl",
	"tage",
	"batage",
	"filter:inner=tage",
}

// lessons are single-behaviour workloads that separate the generations.
var lessons = []struct {
	name string
	spec tracegen.Spec
}{
	{"biased branches", tracegen.Spec{
		Name: "biased", Seed: 1, Branches: 120_000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Biased, Branches: 500, Bias: 0.85}},
	}},
	{"short loops", tracegen.Spec{
		Name: "loops", Seed: 2, Branches: 120_000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Loop, Trips: []int{3, 7}}},
	}},
	{"long loops", tracegen.Spec{
		Name: "longloops", Seed: 3, Branches: 120_000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Loop, Trips: []int{47}}},
	}},
	{"correlated", tracegen.Spec{
		Name: "correlated", Seed: 4, Branches: 120_000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Correlated, Feeders: 5}},
	}},
}

func accuracy(predSpec string, spec tracegen.Spec) float64 {
	p, err := registry.New(predSpec)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := tracegen.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(trace, p, sim.Config{TraceName: spec.Name})
	if err != nil {
		log.Fatal(err)
	}
	return res.Metrics.Accuracy
}

func main() {
	fmt.Printf("%-22s", "predictor")
	for _, l := range lessons {
		fmt.Printf(" | %-16s", l.name)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 22+len(lessons)*19))
	for _, predSpec := range lineup {
		name, _, _ := strings.Cut(predSpec, ":")
		if v, ok := strings.CutPrefix(predSpec, "twolevel:variant="); ok {
			name = "twolevel " + v
		}
		fmt.Printf("%-22s", name)
		for _, l := range lessons {
			fmt.Printf(" | %6.2f%%         ", 100*accuracy(predSpec, l.spec))
		}
		fmt.Println()
	}

	// A note for the class: the predictor metadata embedded in the JSON
	// output (Listing 1) is how experiments stay self-describing.
	p, _ := registry.New("tage")
	if mp, ok := p.(bp.MetadataProvider); ok {
		fmt.Printf("\nevery run records its configuration, e.g. tage -> %v tables\n",
			len(mp.Metadata()["tables"].([]map[string]any)))
	}
}
