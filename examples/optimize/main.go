// Optimize: searching the parameter space (§VI-B of the MBPlib paper).
//
// State-of-the-art predictors have dozens of parameters, so exhaustive
// sweeps are out; because MBPlib is a library, an optimizer can simply call
// the simulator inside its objective function. The example tunes a TAGE
// geometry (number of tables, minimum and maximum history length) with
// hill climbing and with a genetic algorithm, then compares both to the
// default configuration.
//
//	go run ./examples/optimize
package main

import (
	"fmt"
	"log"

	"mbplib/internal/opt"
	"mbplib/internal/predictors/tage"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

var spec = tracegen.Spec{
	Name: "optimize", Seed: 23, Branches: 150_000,
	Kernels: []tracegen.KernelSpec{
		{Kind: tracegen.Biased, Branches: 400, Weight: 2},
		{Kind: tracegen.Loop, Trips: []int{31}},
		{Kind: tracegen.Pattern, PatternBits: "TTTTNNTN"},
		{Kind: tracegen.Correlated, Feeders: 6},
	},
}

// mpkiFor simulates one TAGE geometry. Every table has 2^9 entries so the
// search trades history reach, not storage.
func mpkiFor(pt opt.Point) float64 {
	trace, err := tracegen.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	p := tage.New(tage.WithGeometric(pt["tables"], pt["minhist"], pt["minhist"]+pt["histspan"], 9, 10))
	res, err := sim.Run(trace, p, sim.Config{TraceName: spec.Name})
	if err != nil {
		log.Fatal(err)
	}
	return res.Metrics.MPKI
}

func main() {
	params := []opt.Param{
		{Name: "tables", Min: 2, Max: 10},
		{Name: "minhist", Min: 2, Max: 12},
		{Name: "histspan", Min: 16, Max: 300},
	}

	defaultMPKI := mpkiFor(opt.Point{"tables": 8, "minhist": 4, "histspan": 316})
	fmt.Printf("default geometry (8 tables, histories 4..320): %.4f MPKI\n\n", defaultMPKI)

	hc, err := opt.HillClimb(params, opt.Point{"tables": 4, "minhist": 4, "histspan": 60}, mpkiFor, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hill climbing: %.4f MPKI after %d simulations at %v\n", hc.BestScore, hc.Evaluations, hc.Best)

	ga, err := opt.Genetic(params, mpkiFor, opt.GeneticConfig{Population: 10, Generations: 6, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genetic:       %.4f MPKI after %d simulations at %v\n", ga.BestScore, ga.Evaluations, ga.Best)

	best := hc.BestScore
	if ga.BestScore < best {
		best = ga.BestScore
	}
	fmt.Printf("\nbest found vs default: %.4f vs %.4f MPKI\n", best, defaultMPKI)
}
