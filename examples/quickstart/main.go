// Quickstart: the MBPlib "hello world".
//
// It shows the library-not-framework workflow of the paper in one page:
// user code owns main, builds a trace reader (here a synthetic workload so
// the example runs with no files), builds a predictor, calls sim.Run, and
// prints the JSON result of Listing 1.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"mbplib/internal/predictors/gshare"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

func main() {
	// A small synthetic workload: biased branches, a loop nest and some
	// history-correlated branches. Replace with an sbbt.Reader over a
	// trace file for real experiments (see cmd/mbpsim).
	trace, err := tracegen.New(tracegen.Spec{
		Name: "quickstart", Seed: 1, Branches: 500_000,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased, Branches: 200, Bias: 0.93, Weight: 2},
			{Kind: tracegen.Loop, Trips: []int{4, 10}, Weight: 2},
			{Kind: tracegen.Correlated, Feeders: 4},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The 64 kB GShare configuration of Listing 1: 2^18 two-bit counters
	// indexed by 25 bits of global history.
	predictor := gshare.New(gshare.WithHistoryLength(25), gshare.WithLogSize(18))

	result, err := sim.Run(trace, predictor, sim.Config{
		TraceName:          "synthetic/quickstart",
		WarmupInstructions: 100_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GShare predicted %d conditional branches with %.2f MPKI (accuracy %.4f)\n\n",
		result.Metadata.NumConditionalBranches, result.Metrics.MPKI, result.Metrics.Accuracy)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(result); err != nil {
		log.Fatal(err)
	}
}
