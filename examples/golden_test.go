// Golden-output tests for the example programs. The examples are the
// paper's user-facing surface — Listing 1's JSON, the classroom table, the
// sweep chart — so their exact output is pinned: a refactor that changes
// what a reader of the paper sees must show up as a reviewed golden diff,
// not slip through silently.
//
// Regenerate after an intentional change with:
//
//	go test ./examples -update
package examples

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current example output")

// simTimeRe matches the one non-deterministic value in example output: the
// wall-clock simulation_time field of the Listing 1 JSON result.
var simTimeRe = regexp.MustCompile(`"simulation_time": [0-9.e+-]+`)

func normalize(out []byte) []byte {
	return simTimeRe.ReplaceAll(out, []byte(`"simulation_time": 0`))
}

func TestExamplesGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run full simulations; skipped with -short")
	}
	examples := []string{"classroom", "composition", "optimize", "quickstart", "sweep"}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = ".." // module root, so the examples' relative imports resolve
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./examples/%s: %v\nstderr:\n%s", name, err, stderr.String())
			}
			got := normalize(stdout.Bytes())

			goldenPath := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run 'go test ./examples -update'): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output of examples/%s diverged from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					name, goldenPath, got, want)
			}
		})
	}
}
