// Sweep: the parameter-optimization use case of §VI-A of the MBPlib paper.
//
// Listing 3 of the paper generates one executable per GShare history length
// with a CMake for-loop; in Go the same experiment is a loop over
// constructor parameters. The example fixes the table size (the budget) and
// sweeps the history length H, printing the MPKI curve — the exercise the
// paper suggests for computer architecture classes.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"mbplib/internal/predictors/gshare"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

func main() {
	spec := tracegen.Spec{
		Name: "sweep", Seed: 7, Branches: 300_000,
		Kernels: []tracegen.KernelSpec{
			// Mostly well-behaved branches plus history-hungry ones: short
			// histories miss the correlations, long histories dilute the
			// per-branch state — the U-shaped curve of the classic exercise.
			{Kind: tracegen.Biased, Branches: 300, Bias: 0.95, Weight: 2},
			{Kind: tracegen.Pattern, PatternBits: "TTNTNNT"},
			{Kind: tracegen.Correlated, Feeders: 5, Weight: 2},
			{Kind: tracegen.Loop, Trips: []int{6, 9}},
		},
	}

	fmt.Println("GShare with a fixed 2^18-counter budget, sweeping history length:")
	fmt.Println()
	fmt.Println("  H | MPKI")
	fmt.Println("----|------------------------------")
	bestH, bestMPKI := 0, 0.0
	for h := 2; h <= 30; h += 2 {
		trace, err := tracegen.New(spec) // fresh, identical trace per run
		if err != nil {
			log.Fatal(err)
		}
		p := gshare.New(gshare.WithHistoryLength(h), gshare.WithLogSize(18))
		res, err := sim.Run(trace, p, sim.Config{TraceName: spec.Name})
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(res.Metrics.MPKI))
		fmt.Printf(" %2d | %7.3f %s\n", h, res.Metrics.MPKI, bar)
		if bestH == 0 || res.Metrics.MPKI < bestMPKI {
			bestH, bestMPKI = h, res.Metrics.MPKI
		}
	}
	fmt.Printf("\nbest history length: H=%d (%.3f MPKI)\n", bestH, bestMPKI)
}
