// Composition: predictors as components (§IV-B, §VI-C, §VI-D of the MBPlib
// paper).
//
// The example builds the generalized tournament of Listing 4 — a bimodal
// and a GShare base arbitrated by a bimodal meta-predictor — and uses the
// comparison simulator to show per-branch where the tournament improves on
// plain GShare and whether any branch got worse. The Train/Track split is
// what makes the composition possible: the meta-predictor trains only when
// its bases disagree but tracks every branch.
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"log"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/tournament"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

func workload() *tracegen.Generator {
	g, err := tracegen.New(tracegen.Spec{
		Name: "composition", Seed: 11, Branches: 400_000,
		Kernels: []tracegen.KernelSpec{
			// Noisy biased branches favour bimodal (history dilutes them)...
			{Kind: tracegen.Biased, Branches: 900, Bias: 0.9, Weight: 3},
			// ...while correlated branches need GShare's history.
			{Kind: tracegen.Correlated, Feeders: 4, Weight: 2},
			{Kind: tracegen.CallRet, Branches: 60},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func newGShare() bp.Predictor {
	return gshare.New(gshare.WithHistoryLength(12), gshare.WithLogSize(14))
}
func newBimodal() bp.Predictor { return bimodal.New(bimodal.WithLogSize(14)) }

func main() {
	// Baselines.
	for _, c := range []struct {
		name string
		p    bp.Predictor
	}{
		{"bimodal", newBimodal()},
		{"gshare", newGShare()},
		{"tournament", tournament.New(bimodal.New(bimodal.WithLogSize(12)), newBimodal(), newGShare())},
	} {
		res, err := sim.Run(workload(), c.p, sim.Config{TraceName: "composition"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %6.3f MPKI  (accuracy %.4f)\n", c.name, res.Metrics.MPKI, res.Metrics.Accuracy)
	}

	// The comparison simulator of §VI-C: which branches does the
	// tournament predict better than plain GShare, and which worse?
	tour := tournament.New(bimodal.New(bimodal.WithLogSize(12)), newBimodal(), newGShare())
	cmp, err := sim.Compare(workload(), newGShare(), tour, sim.Config{TraceName: "composition", MostFailedLimit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngshare %.3f MPKI vs tournament %.3f MPKI; biggest per-branch differences:\n",
		cmp.Metrics0.MPKI, cmp.Metrics1.MPKI)
	for _, mf := range cmp.MostFailed {
		verdict := "improved"
		if mf.MPKIDiff > 0 {
			verdict = "worsened"
		}
		fmt.Printf("  branch %#x: %.4f -> %.4f MPKI (%s)\n", mf.IP, mf.MPKI0, mf.MPKI1, verdict)
	}
}
