# Developer entry points. `make check` runs the same suite as CI
# (.github/workflows/ci.yml); keep the two in sync.

GO ?= go
FUZZTIME ?= 20s

.PHONY: check fmt vet build test race race-kernel race-daemon mbpvet vet-fix vet-sarif fault-sweep fuzz-smoke daemon-smoke bench bench-smoke bench-snapshot bench-check metrics-overhead journal-overhead golden

check: fmt vet build test race race-kernel race-daemon mbpvet fault-sweep fuzz-smoke daemon-smoke bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Kernel-vs-scalar equivalence under the race detector: every batch-kernel
# dispatch path (single runs with warm-up/limit edges, parallel sweeps at
# several worker counts, journalled replays) must produce byte-identical
# results with the kernels stripped.
race-kernel:
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'TestKernelRunMatchesScalar|TestSweepParallelKernelScalarEquivalence' ./internal/sim/

# Remote-vs-local sweep equivalence under the race detector on a
# constrained scheduler: the daemon path (submit over the HTTP API, wait,
# render) must print byte-identical output to the local mbpsweep pipeline
# while the runner, SSE watchers and drain merger interleave on two threads.
race-daemon:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/daemon/ ./cmd/mbpctl/ ./cmd/mbpd/

# End-to-end service smoke over real processes and a real TCP port: build
# mbpd + mbpctl, submit a generated-trace sweep, diff the result JSON
# against a local mbpsweep run, prove the resubmit cache hit, then drain
# with SIGTERM. See scripts/daemon_smoke.sh.
daemon-smoke:
	sh scripts/daemon_smoke.sh

mbpvet:
	$(GO) run ./cmd/mbpvet ./...

# Apply mbpvet's suggested fixes (atomic load/store rewrites, context
# substitutions) in place, then report whatever remains.
vet-fix:
	$(GO) run ./cmd/mbpvet -fix ./...

# Render the findings as SARIF 2.1.0 for code-scanning upload; exit status
# still reports findings, so `|| true` when only the report is wanted.
vet-sarif:
	$(GO) run ./cmd/mbpvet -sarif ./...

# The exhaustive fault-injection sweep: truncations and bit-flips at every
# byte offset of every trace format, plus hostile headers and short reads.
fault-sweep:
	$(GO) test -run 'TestSweep' -v ./internal/faults/

# Full timing runs of the batching benchmarks (read stage, simulation and
# the parallel sweep scheduler).
bench:
	$(GO) test -run=NONE -bench 'BenchmarkSBBTRead|BenchmarkRun|BenchmarkSweep' -benchtime=2s ./internal/bench/

# One iteration per benchmark: proves the benchmarks still compile and run
# without paying for stable timings. Used by CI.
bench-smoke:
	$(GO) test -run=NONE -bench 'BenchmarkSBBTRead|BenchmarkRun|BenchmarkSweep' -benchtime=1x ./internal/bench/

# Regenerate the committed BENCH_sim.json over a 2M-branch trace.
bench-snapshot:
	$(GO) run ./cmd/mbpbench -sim-snapshot BENCH_sim.json -scale 2000000

# Soft regression gate: re-measure the snapshot stages at reduced scale and
# fail only on a >2x throughput regression against the committed snapshot.
# Absolute numbers vary wildly across machines; this catches accidents like
# an O(n^2) decode loop, not ordinary noise.
bench-check:
	$(GO) run ./cmd/mbpbench -sim-check BENCH_sim.json -scale 200000 -sim-rounds 1

# Timing half of the observability contract: instrumented sim.Run within
# 10% of a metrics-disabled run. Env-gated because it is machine-sensitive;
# CI runs it in the continue-on-error bench-check job.
metrics-overhead:
	MBP_METRICS_OVERHEAD=1 $(GO) test -run TestMetricsOverheadSmoke -v ./internal/bench/

# Timing half of the durability contract: journalling every cell result must
# stay under 3% of cell time at snapshot scale. Env-gated like the metrics
# smoke; CI runs it in the continue-on-error bench-check job.
journal-overhead:
	MBP_JOURNAL_OVERHEAD=1 $(GO) test -run TestJournalOverheadSmoke -v ./internal/bench/

# Regenerate the golden files for the example programs after an intentional
# output change; the diff is the review artifact.
golden:
	$(GO) test ./examples -update

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzSBBTRoundTrip -fuzztime=$(FUZZTIME) ./internal/sbbt/
	$(GO) test -run=NONE -fuzz=FuzzBT9RoundTrip -fuzztime=$(FUZZTIME) ./internal/bt9/
	$(GO) test -run=NONE -fuzz=FuzzMLZRoundTrip -fuzztime=$(FUZZTIME) ./internal/compress/
	$(GO) test -run=NONE -fuzz=FuzzMLZSRoundTrip -fuzztime=$(FUZZTIME) ./internal/compress/
	$(GO) test -run=NONE -fuzz=FuzzMLZSIndexTrailer -fuzztime=$(FUZZTIME) ./internal/compress/
	$(GO) test -run=NONE -fuzz=FuzzJournalRecord -fuzztime=$(FUZZTIME) ./internal/sim/journal/
