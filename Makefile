# Developer entry points. `make check` runs the same suite as CI
# (.github/workflows/ci.yml); keep the two in sync.

GO ?= go
FUZZTIME ?= 20s

.PHONY: check fmt vet build test race mbpvet fault-sweep fuzz-smoke

check: fmt vet build test race mbpvet fault-sweep fuzz-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

mbpvet:
	$(GO) run ./cmd/mbpvet ./...

# The exhaustive fault-injection sweep: truncations and bit-flips at every
# byte offset of every trace format, plus hostile headers and short reads.
fault-sweep:
	$(GO) test -run 'TestSweep' -v ./internal/faults/

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzSBBTRoundTrip -fuzztime=$(FUZZTIME) ./internal/sbbt/
	$(GO) test -run=NONE -fuzz=FuzzBT9RoundTrip -fuzztime=$(FUZZTIME) ./internal/bt9/
	$(GO) test -run=NONE -fuzz=FuzzMLZRoundTrip -fuzztime=$(FUZZTIME) ./internal/compress/
